"""The event-driven dissemination simulation.

Semantics (DESIGN.md §5):

- Source updates fire at trace timestamps; only *changes* are simulated
  (polling repeats carry no information).  The traces themselves come
  from the config's workload (:mod:`repro.workloads`), so the same
  engine serves stationary Table 1 dynamics, flash crowds, diurnal
  cycles, or replayed recordings unchanged.
- When an update reaches a node, the node's local copy refreshes
  immediately, then the node checks each dependent registered for the
  item.  Checks are instantaneous bookkeeping; a *forwarded* copy costs
  ``comp_delay`` of serialised server time at the node (the paper's
  12.5 ms covers the check plus preparing the transmission) before it
  leaves, then travels the precomputed end-to-end network delay.
- The per-node serialisation is what makes a node with many dependents a
  bottleneck -- the mechanism behind the U-curve's rising arm and the
  no-cooperation saturation of Figures 5/6.

Churn (Section 4's "the algorithm is reapplied"): when the config
carries a :class:`~repro.engine.churn.ChurnSchedule`, its events run
inside the kernel at their scheduled times.  Each event applies
:class:`~repro.core.dynamics.DynamicMembership` (join incrementally;
depart/coherency-change rebuild in join order), and the resulting
:class:`~repro.core.dynamics.ReconfigurationDiff` is applied to the
*live* run: removed service edges are torn down (policy state dropped),
added edges are wired up (the new subscriber is primed with its
parent's current copy), and the diff's cost is charged into
:class:`~repro.core.metrics.CostCounters`.  Updates still in flight
toward a departed repository count as drops; fidelity is scored only
over the intervals a (repository, item, tolerance) requirement was
actually live.

Unplanned failures (:mod:`repro.engine.failures`): when the config
carries a :class:`~repro.engine.failures.FailureSchedule`, crash /
recover / link events likewise run in-kernel.  Messages toward a
crashed repository or over a down link count as drops; a crash fails
the orphaned dependents over to the nearest live ancestor (charged as
reconfiguration cost through the same
:class:`~repro.core.dynamics.ReconfigurationDiff` machinery churn
uses); a recovery anti-entropy-resyncs only the repository's missed
update-set and then re-homes its dependents.  Fidelity is scored over
availability segments, exactly like churn.
"""

from __future__ import annotations

import numpy as np

from repro.core.dissemination import DisseminationPolicy, make_policy
from repro.core.dissemination.filtering import FILTERED_POLICIES, forward_distributed
from repro.core.dynamics import ReconfigurationDiff
from repro.core.fidelity import FidelityAccumulator, segmented_loss
from repro.core.interests import InterestProfile
from repro.core.metrics import CostCounters
from repro.engine.builder import (
    SimulationSetup,
    build_setup,
    make_adaptive_controller,
    make_membership,
)
from repro.engine.churn import ChurnEvent
from repro.engine.failures import FailureEvent
from repro.engine.config import SimulationConfig
from repro.engine.results import SimulationResult
from repro.errors import ConfigurationError, SimulationError
from repro.sim.kernel import Simulator
from repro.sim.queueing import FifoStation
from repro.sim.rng import RandomStreams
from repro.traces.schedule import UpdateSchedule

__all__ = ["DisseminationSimulation", "make_simulation", "run_simulation"]

#: One fidelity-scoring segment: [t_start, t_end or None (still open),
#: the own-tolerance live over the segment].
_Segment = list


class DisseminationSimulation:
    """Drives one dissemination policy over one built setup."""

    def __init__(
        self,
        setup: SimulationSetup,
        policy: DisseminationPolicy | None = None,
        observer=None,
    ):
        self.setup = setup
        self.policy = policy if policy is not None else make_policy(setup.config.policy)
        # Out-of-band observability hook (repro.obs.trace.TraceRecorder
        # or compatible).  Never part of the config -- result-cache keys
        # and fingerprints are unaffected -- and consulted only behind
        # `is not None` guards, so an unobserved run does no extra work
        # and an observed run is bit-identical (the observer records
        # decisions; it never makes them).
        self.observer = observer
        self.kernel = Simulator()
        self.counters = CostCounters()
        self._comp_delay_s = setup.config.comp_delay_ms / 1000.0
        self._source = setup.source
        self._loss_probability = setup.config.message_loss_probability
        self._loss_rng = (
            RandomStreams(setup.config.seed).stream("message-loss")
            if self._loss_probability > 0.0
            else None
        )
        # Churn state: the membership is rebuilt fresh per simulation (a
        # shared setup must stay read-only; the replay is deterministic,
        # so its graph is bit-identical to setup.graph).
        self._churn = setup.config.churn
        self._membership = make_membership(setup) if self._churn is not None else None
        self._departed: set[int] = set()
        # Unplanned-failure state (mutually exclusive with churn): the
        # currently crashed repositories, the currently down service
        # links, and -- when a schedule is present -- per-(child, item)
        # parent maps so orphans can fail over and recoverers re-home.
        self._failures = setup.config.failures
        self._crashed: set[int] = set()
        self._down_links: set[tuple[int, int]] = set()
        # Adaptive re-optimization state (mutually exclusive with both
        # churn and failures): the per-run drift controller owns the
        # live graph once a rewire is applied.  Built before _prepare()
        # because _graph already resolves through it.
        self._adaptive = setup.config.adaptive
        self._adaptive_controller = (
            make_adaptive_controller(setup) if self._adaptive is not None else None
        )
        self._source_value: dict[int, float] = {}
        self._stations: dict[int, FifoStation] = {}
        # Per (node, item): list of (child, c_serve); precomputed for speed.
        self._children: dict[tuple[int, int], list[tuple[int, float]]] = {}
        self._receive_c: dict[tuple[int, int], float] = {}
        # Per (repo, item): delivery log [(time, value), ...].
        self._deliveries: dict[tuple[int, int], list[tuple[float, float]]] = {}
        # Per (repo, item): fidelity-scoring segments (see _Segment).
        self._segments: dict[tuple[int, int], list[_Segment]] = {}
        # Modeled-client plane: per (repo, item), the clients' tolerance
        # array (read-only, from the setup) and this run's own mutable
        # last-served array, primed with the item's initial value.
        self._client_tols: dict[tuple[int, int], np.ndarray] = {}
        self._client_last: dict[tuple[int, int], np.ndarray] = {}
        client_tolerances = getattr(setup, "client_tolerances", None)
        if client_tolerances:
            for key, tols in client_tolerances.items():
                self._client_tols[key] = tols
                self._client_last[key] = np.full(
                    tols.shape, setup.traces[key[1]].initial_value
                )
        self._prepare()

    # ------------------------------------------------------------------

    @property
    def _graph(self):
        """The live dissemination graph (rebound by churn rebuilds and
        adaptive re-optimizations)."""
        if self._membership is not None:
            return self._membership.graph
        if self._adaptive_controller is not None:
            return self._adaptive_controller.graph
        return self.setup.graph

    def _graphs(self):
        """(graph, root, item ids) triples to wire up.

        The single-source engine serves every item from one graph; the
        multi-source extension overrides this with one triple per source.
        """
        return [(self._graph, self._source, list(self.setup.traces))]

    def _prepare(self) -> None:
        self._root_of: dict[int, int] = {}
        self._parent_of: dict[tuple[int, int], int] = {}
        for graph, root, item_ids in self._graphs():
            for node in graph.nodes:
                if node not in self._stations:
                    self._stations[node] = FifoStation(name=f"node{node}")
            for item_id in item_ids:
                self._root_of[item_id] = root
                initial = self.setup.traces[item_id].initial_value
                for node in graph.nodes:
                    children = graph.children_for_item(node, item_id)
                    if children:
                        self._children[(node, item_id)] = children
                        for child, c_serve in children:
                            self._parent_of[(child, item_id)] = node
                            self.policy.register_edge(
                                node, child, item_id, c_serve, initial
                            )
                    if node != root:
                        state = graph.nodes[node]
                        if item_id in state.receive_c:
                            self._receive_c[(node, item_id)] = state.receive_c[item_id]
                            self._deliveries[(node, item_id)] = [(0.0, initial)]
        initial_members = (
            set(self._membership.members) if self._membership is not None else None
        )
        for repo, profile in self.setup.profiles.items():
            if initial_members is not None and repo not in initial_members:
                continue  # late joiner: scoring starts at its join event
            for item_id, c_own in profile.requirements.items():
                self._segments[(repo, item_id)] = [[0.0, None, c_own]]
        # Failover re-homes dependents, so remember where they started.
        self._home_parent = (
            dict(self._parent_of) if self._failures is not None else {}
        )

    # ------------------------------------------------------------------

    def _on_source_update(
        self, item_id: int, value: float, update_id: int = -1
    ) -> None:
        self._source_value[item_id] = value
        root = self._root_of[item_id]
        decision = self.policy.at_source(item_id, value)
        if decision.checks:
            self.counters.record_check(root, is_source=True, count=decision.checks)
        if self.observer is not None:
            self.observer.on_source(
                update_id, item_id, self.kernel.now, root,
                decision.checks, decision.disseminate,
            )
        if not decision.disseminate:
            return
        self._process_at_node(root, item_id, value, decision.tag, update_id)

    def _on_delivery(
        self,
        node: int,
        item_id: int,
        value: float,
        tag,
        update_id: int = -1,
        src: int = -1,
    ) -> None:
        if node in self._departed or node in self._crashed:
            # The sender paid for the message, but the repository left
            # (or crashed) while it was in flight: a drop.
            self.counters.record_drop()
            if self.observer is not None:
                reason = "departed" if node in self._departed else "crash"
                self.observer.on_drop(
                    update_id, item_id, self.kernel.now, src, node, reason
                )
            return
        self.counters.record_delivery()
        if self.observer is not None:
            self.observer.on_deliver(update_id, item_id, self.kernel.now, node)
        log = self._deliveries.get((node, item_id))
        if log is not None:
            log.append((self.kernel.now, value))
        self._serve_clients(node, item_id, value)
        self._process_at_node(node, item_id, value, tag, update_id)

    def _serve_clients(self, node: int, item_id: int, value: float) -> None:
        """Filter one fresh copy to the repository's modeled clients.

        Mirrors the live layer: every client is served by the
        repository-local Eq. (3) + Eq. (7) test at the client's own
        tolerance, regardless of the repository-plane policy, and client
        traffic stays out of the repository-plane counters.  This scalar
        per-client loop is the oracle the vectorized kernel's one-call
        batch must agree with, client for client.
        """
        tols = self._client_tols.get((node, item_id))
        if tols is None:
            return
        receive_c = self._receive_c.get((node, item_id))
        if receive_c is None:
            # The pair is mid-teardown (churn removed the subscription
            # while this message was in flight): nobody to serve from.
            return
        last = self._client_last[(node, item_id)]
        sent = 0
        for index in range(len(tols)):
            if forward_distributed(value, last[index], tols[index], receive_c):
                last[index] = value
                sent += 1
        self.counters.record_client_serving(checks=len(tols), messages=sent)

    def _process_at_node(
        self, node: int, item_id: int, value: float, tag, update_id: int = -1
    ) -> None:
        children = self._children.get((node, item_id))
        if not children:
            return
        now = self.kernel.now
        is_source = node == self._root_of[item_id]
        parent_receive_c = 0.0 if is_source else self._receive_c[(node, item_id)]
        station = self._stations[node]
        observer = self.observer
        for child, _c_serve in children:
            decision = self.policy.decide(
                node, child, item_id, value, parent_receive_c, tag
            )
            self.counters.record_check(node, is_source=is_source, count=decision.checks)
            if observer is not None:
                observer.on_check(
                    update_id, item_id, now, node, child,
                    decision.checks, decision.forward, is_source,
                )
            if not decision.forward:
                continue
            departure = station.submit(now, self._comp_delay_s)
            arrival = departure + self.setup.network.delay_s(node, child)
            self.counters.record_message(node, is_source=is_source)
            if observer is not None:
                observer.on_forward(update_id, item_id, now, node, child, arrival - now)
            if self._down_links and (node, child) in self._down_links:
                # Partition: the sender paid (queueing included) but the
                # link ate the message.  Decided before the Bernoulli
                # loss draw, so the loss stream is only consumed for
                # messages that actually enter the network.
                self.counters.record_drop()
                if observer is not None:
                    observer.on_drop(update_id, item_id, now, node, child, "partition")
                continue
            if (
                self._loss_rng is not None
                and self._loss_rng.random() < self._loss_probability
            ):
                # Failure injection: the sender paid for the message but
                # the network ate it; the child stays stale until the
                # next update for it is forwarded.
                self.counters.record_drop()
                if observer is not None:
                    observer.on_drop(update_id, item_id, now, node, child, "loss")
                continue
            self.kernel.schedule_at(
                arrival, self._on_delivery, child, item_id, value, tag, update_id, node
            )

    # ------------------------------------------------------------------
    # Churn execution
    # ------------------------------------------------------------------

    def _on_churn(self, event: ChurnEvent) -> None:
        """Apply one membership change to the live run."""
        now = self.kernel.now
        repo = event.repository
        resync: frozenset = frozenset()
        if event.kind == "join":
            profile = event.profile()
            if profile is None:
                profile = self.setup.profiles[repo]
            if repo in self._departed:
                # A rejoining repository comes back with stale state: it
                # must receive deliveries again and initial-sync fresh
                # copies rather than resume from its pre-departure ones.
                self._departed.discard(repo)
                resync = frozenset((repo,))
            diff = self._membership.join(profile)
            for item_id in sorted(profile.requirements):
                self._segments.setdefault((repo, item_id), []).append(
                    [now, None, profile.requirements[item_id]]
                )
        elif event.kind == "depart":
            diff = self._membership.leave(repo)
            self._departed.add(repo)
            for (r, _item_id), segments in self._segments.items():
                if r == repo and segments and segments[-1][1] is None:
                    segments[-1][1] = now
        else:  # coherency / data-needs change
            old = dict(self._membership.profile_of(repo).requirements)
            new = dict(event.requirements)
            diff = self._membership.update_requirements(
                InterestProfile(repository=repo, requirements=new)
            )
            for item_id in sorted(set(old) | set(new)):
                old_c, new_c = old.get(item_id), new.get(item_id)
                if old_c == new_c:
                    continue  # untouched requirement: segment stays open
                segments = self._segments.get((repo, item_id))
                if old_c is not None and segments and segments[-1][1] is None:
                    segments[-1][1] = now
                if new_c is not None:
                    self._segments.setdefault((repo, item_id), []).append(
                        [now, None, new_c]
                    )
        self._apply_diff(diff, now, resync=resync)

    def _apply_diff(self, diff, now: float, resync: frozenset = frozenset()) -> None:
        """Tear down removed service edges, wire up added ones.

        Args:
            diff: The membership change's edge-level diff.
            now: Simulated time the reconfiguration takes effect.
            resync: Nodes whose existing copies are stale (a rejoining
                repository) and must initial-sync even though they still
                hold a delivery log from their earlier membership.
        """
        self.counters.record_reconfiguration(
            n_added=len(diff.added), n_removed=len(diff.removed)
        )
        graph = self._graph
        for parent, child, item_id, _c in sorted(diff.removed):
            key = (parent, item_id)
            children = self._children.get(key)
            if children is not None:
                children[:] = [(ch, cc) for ch, cc in children if ch != child]
                if not children:
                    del self._children[key]
            self.policy.unregister_edge(parent, child, item_id)
            state = graph.nodes.get(child)
            if state is None or item_id not in state.receive_c:
                # The child no longer receives the item at all (departed,
                # or the rebuild dropped the relay); its delivery log is
                # kept for fidelity scoring of the elapsed interval.
                self._receive_c.pop((child, item_id), None)
        # Parents must hold a current copy before their children sync
        # from them, so wire additions root-downward per item tree.
        added = sorted(
            diff.added, key=lambda e: (e[2], graph.item_depth(e[1], e[2]), e)
        )
        for parent, child, item_id, c_serve in added:
            for node in (parent, child):
                if node not in self._stations:
                    self._stations[node] = FifoStation(name=f"node{node}")
            value = self._current_value(parent, item_id)
            log = self._deliveries.get((child, item_id))
            if log is None or child in resync:
                # New subscription (or a rejoiner with stale state): the
                # child initial-syncs the parent's current copy (charged
                # as reconfiguration cost, not as an update message).
                if log is None:
                    self._deliveries[(child, item_id)] = [(now, value)]
                else:
                    log.append((now, value))
                initial = value
            else:
                # Re-homed subscription: the child keeps its own copy.
                initial = log[-1][1]
            self._receive_c[(child, item_id)] = c_serve
            self._children.setdefault((parent, item_id), []).append((child, c_serve))
            self.policy.register_edge(parent, child, item_id, c_serve, initial)

    # ------------------------------------------------------------------
    # Adaptive re-optimization execution
    # ------------------------------------------------------------------

    def _message_counts(self) -> dict[int, int]:
        """Cumulative per-node sent-message counts right now.

        The drift signal the adaptive controller consumes; the
        vectorized kernel overrides this to sparsify its dense array
        into the identical dict.
        """
        return dict(self.counters.per_node_messages)

    def _on_adaptive_tick(self, now: float) -> None:
        """One drift evaluation; apply the rewire diff if one fires.

        Shared by the vectorized kernel (called from its drain loop at
        the tick's timestamp), so both engines make identical rewiring
        decisions from identical counter snapshots.
        """
        diff = self._adaptive_controller.on_tick(now, self._message_counts())
        observer = self.observer
        if observer is not None and getattr(observer, "metrics", None) is not None:
            metrics = observer.metrics
            metrics.counter("adaptive.ticks").inc()
            drifts = self._adaptive_controller.last_drifts
            if drifts:
                metrics.gauge("adaptive.max_drift").set(max(drifts.values()))
                hist = metrics.histogram(
                    "adaptive.drift", bounds=(0.1, 0.25, 0.5, 1.0, 2.0, 5.0)
                )
                for value in drifts.values():
                    hist.observe(value)
            if diff is not None:
                metrics.counter("adaptive.rewires").inc()
        if diff is not None:
            self._apply_diff(diff, now)

    # ------------------------------------------------------------------
    # Unplanned-failure execution
    # ------------------------------------------------------------------

    def _on_failure(self, event: FailureEvent) -> None:
        self._apply_failure(event, self.kernel.now)

    def _apply_failure(self, event: FailureEvent, now: float) -> None:
        """Apply one crash/recover/link event to the live run.

        Shared verbatim by the vectorized kernel (which calls it from
        its drain loop at the event's timestamp), so both engines make
        identical reconfiguration and resync decisions.
        """
        if event.kind == "link_down":
            self._down_links.add(event.link)
            return
        if event.kind == "link_up":
            self._down_links.discard(event.link)
            return
        repo = event.repository
        if event.kind == "crash":
            self._crashed.add(repo)
            # The repository is unavailable: close its open scoring
            # segments (fidelity is only owed while it is up).
            for (r, _item_id), segments in self._segments.items():
                if r == repo and segments and segments[-1][1] is None:
                    segments[-1][1] = now
            self._fail_over(repo, now)
        else:  # recover
            self._crashed.discard(repo)
            for (r, _item_id), segments in self._segments.items():
                if r == repo and segments and segments[-1][1] is not None:
                    segments.append([now, None, segments[-1][2]])
            self._resync(repo, now)
            self._restore_home(repo, now)

    def _live_parent(self, node: int, item_id: int) -> int | None:
        """The nearest non-crashed ancestor serving ``item_id`` above
        ``node``, or ``None`` when the walk leaves the tree (the node
        roots the item, as multi-source roots do)."""
        parent = self._parent_of.get((node, item_id))
        while parent is not None and parent in self._crashed:
            parent = self._parent_of.get((parent, item_id))
        return parent

    def _fail_over(self, repo: int, now: float) -> None:
        """Re-home the crashed repository's dependents to backup parents."""
        moved: list[tuple[int, int, int, float, int]] = []
        for (node, item_id), children in self._children.items():
            if node != repo:
                continue
            backup = self._live_parent(repo, item_id)
            if backup is None:
                continue  # no live ancestor: dependents wait for recovery
            for child, c_serve in children:
                moved.append((repo, child, item_id, c_serve, backup))
        if not moved:
            return
        diff = ReconfigurationDiff(
            added=frozenset((b, ch, it, c) for _p, ch, it, c, b in moved),
            removed=frozenset((p, ch, it, c) for p, ch, it, c, _b in moved),
        )
        self._apply_diff(diff, now)
        for _parent, child, item_id, _c, backup in moved:
            self._parent_of[(child, item_id)] = backup

    def _restore_home(self, repo: int, now: float) -> None:
        """Wire re-homed dependents back to their recovered home parent."""
        moved: list[tuple[int, int, int, float]] = []
        for (child, item_id), home in self._home_parent.items():
            if home != repo:
                continue
            current = self._parent_of.get((child, item_id))
            if current is None or current == repo:
                continue
            c_serve = self._receive_c.get((child, item_id))
            if c_serve is None:
                continue
            moved.append((current, child, item_id, c_serve))
        if not moved:
            return
        diff = ReconfigurationDiff(
            added=frozenset((repo, ch, it, c) for _cur, ch, it, c in moved),
            removed=frozenset(moved),
        )
        self._apply_diff(diff, now)
        for _current, child, item_id, _c in moved:
            self._parent_of[(child, item_id)] = repo

    def _resync(self, repo: int, now: float) -> None:
        """Anti-entropy resync of a recovered repository's stale copies.

        Setdiscovery-style: one comparison against the live parent per
        subscribed item (the discovery round), one transfer only for
        items whose copy actually diverged while the repository was
        down -- the missed update-set, never a full state transfer.
        """
        checks = 0
        messages = 0
        for node, item_id in sorted(self._receive_c):
            if node != repo:
                continue
            provider = self._live_parent(repo, item_id)
            if provider is None:
                continue  # whole ancestry down: nothing fresher to pull
            checks += 1
            value = self._current_value(provider, item_id)
            log = self._deliveries[(repo, item_id)]
            if value != log[-1][1]:
                log.append((now, value))
                messages += 1
        if checks:
            self.counters.record_resync(checks, messages)

    def _current_value(self, node: int, item_id: int) -> float:
        """The copy ``node`` holds for ``item_id`` right now."""
        if node == self._root_of[item_id]:
            return self._source_value.get(
                item_id, self.setup.traces[item_id].initial_value
            )
        log = self._deliveries.get((node, item_id))
        if log is None:
            raise SimulationError(
                f"node {node} has no copy of item {item_id} to serve from"
            )
        return log[-1][1]

    # ------------------------------------------------------------------

    def _update_schedule(self) -> UpdateSchedule:
        """The run's source-update timeline (precomputed by the builder;
        recomputed here only for hand-built setups)."""
        schedule = getattr(self.setup, "update_schedule", None)
        if schedule is None:
            schedule = UpdateSchedule.from_traces(self.setup.traces)
        return schedule

    def run(self) -> SimulationResult:
        """Schedule all trace updates, run to quiescence, score fidelity."""
        if self._churn is not None:
            # Scheduled before the trace updates so that a churn event
            # and an update at the same instant apply membership first
            # (the kernel breaks time ties in scheduling order).
            for event in self._churn.events:
                self.kernel.schedule_at(float(event.time), self._on_churn, event)
        if self._failures is not None:
            # Same tie-break contract as churn: a failure event and an
            # update or delivery at the same instant apply the failure
            # first (crash at t drops the delivery at t).
            for event in self._failures.events:
                self.kernel.schedule_at(float(event.time), self._on_failure, event)
        schedule = self._update_schedule()
        if self._adaptive_controller is not None:
            # Same tie-break contract as churn and failures: a drift
            # tick and a delivery at the same instant evaluate the tick
            # first, so both kernels see identical counter snapshots.
            for t in self._adaptive_controller.tick_times(schedule.span):
                self.kernel.schedule_at(t, self._on_adaptive_tick, t)
        # tolist() yields plain Python floats/ints; scheduling the merged
        # time-sorted timeline enqueues the same (time, relative-order)
        # set the per-trace loop always produced, so heap pop order --
        # and with it every result bit -- is unchanged.
        # The enumerate index is the update's stable trace id: the same
        # numbering the vectorized drain loop and the live layer's
        # source sequence (seq - 1) reproduce.
        for update_id, (t, item_id, v) in enumerate(
            zip(
                schedule.times.tolist(),
                schedule.item_ids.tolist(),
                schedule.values.tolist(),
            )
        ):
            self.kernel.schedule_at(t, self._on_source_update, item_id, v, update_id)
        self.kernel.run()
        return self._score(schedule.span)

    def _score(self, span: float) -> SimulationResult:
        accumulator = FidelityAccumulator()
        per_pair: dict[tuple[int, int], float] = {}
        for (repo, item_id), segments in self._segments.items():
            trace = self.setup.traces[item_id]
            log = self._deliveries.get((repo, item_id))
            if log is None:
                # Never wired for the item (cannot happen after LeLA
                # validation, but fail loud rather than silently).
                raise RuntimeError(
                    f"repository {repo} has no delivery log for item {item_id}"
                )
            recv_times = [entry[0] for entry in log]
            recv_values = [entry[1] for entry in log]
            t0 = float(trace.times[0])
            t1 = float(trace.times[-1])
            # A single open segment covering t0 (static membership, no
            # failure touched the pair) scores exactly as the churn-free
            # engine always has, bit for bit; otherwise the loss is
            # duration-weighted over the live intervals.  None means the
            # requirement was never live inside the window (e.g. a join
            # past the last trace sample): nothing to score.
            loss = segmented_loss(
                trace.times,
                trace.values,
                recv_times,
                recv_values,
                segments,
                t0,
                t1,
            )
            if loss is None:
                continue
            accumulator.add(repo, item_id, loss)
            per_pair[(repo, item_id)] = loss
        extras: dict = {
            "per_pair_loss": per_pair,
            "workload": self.setup.config.workload.name,
        }
        if self._membership is not None:
            extras["churn_events"] = len(self._churn)
            extras["final_members"] = len(self._membership.members)
        if self._failures is not None:
            extras["failure_events"] = len(self._failures)
            extras["crashes"] = self._failures.count("crash")
            extras["partitions"] = self._failures.count("link_down")
        if self._adaptive_controller is not None:
            extras["adaptive_ticks"] = self._adaptive_controller.ticks
            extras["adaptive_triggered"] = self._adaptive_controller.triggered
            extras["adaptive_rewires"] = self._adaptive_controller.rewires
        return SimulationResult(
            loss_of_fidelity=accumulator.system_loss(),
            per_repository_loss=accumulator.per_repository(),
            counters=self.counters,
            tree_stats=self._graph.stats(),
            effective_degree=self.setup.effective_degree,
            avg_comm_delay_ms=self.setup.avg_comm_delay_ms,
            events_processed=self._events_processed(),
            sim_span_s=span,
            extras=extras,
        )

    def _events_processed(self) -> int:
        """Kernel-event count for the result (hook for other kernels)."""
        return self.kernel.events_processed

    def delivery_log(self, repo: int, item_id: int) -> list[tuple[float, float]]:
        """The (time, value) receive log for one repository/item pair."""
        return list(self._deliveries.get((repo, item_id), []))


def make_simulation(
    setup: SimulationSetup,
    policy: DisseminationPolicy | None = None,
    observer=None,
) -> DisseminationSimulation:
    """Instantiate the engine the setup's config asks for.

    ``kernel="auto"`` (the default) picks the vectorized array-backed
    engine whenever the run supports it -- no churn schedule and one of
    the four push policies -- and the scalar oracle otherwise.  The two
    are bit-identical wherever both apply (pinned by the golden suite),
    so the choice is purely a wall-clock matter.

    ``observer`` (e.g. a :class:`repro.obs.trace.TraceRecorder`) is
    attached out-of-band; it records trace spans without perturbing the
    run.

    Raises:
        ConfigurationError: when ``kernel="vectorized"`` is forced for a
            run the vectorized engine does not support.
    """
    # Local import: the vectorized engine subclasses
    # DisseminationSimulation, so importing it at module scope would be
    # circular.
    from repro.engine.vectorized import VectorizedSimulation

    config = setup.config
    kernel = getattr(config, "kernel", "auto")
    policy_name = policy.name if policy is not None else config.policy
    supported = config.churn is None and policy_name in FILTERED_POLICIES
    if kernel == "scalar":
        return DisseminationSimulation(setup, policy, observer=observer)
    if kernel == "vectorized":
        if not supported:
            raise ConfigurationError(
                "kernel='vectorized' cannot run this simulation "
                f"(policy={policy_name!r}, churn={'yes' if config.churn else 'no'}); "
                "supported: no churn and a policy in "
                f"{list(FILTERED_POLICIES)}"
            )
        return VectorizedSimulation(setup, policy, observer=observer)
    return (
        VectorizedSimulation(setup, policy, observer=observer)
        if supported
        else DisseminationSimulation(setup, policy, observer=observer)
    )


def run_simulation(
    config: SimulationConfig,
    setup: SimulationSetup | None = None,
    base: SimulationSetup | None = None,
    observer=None,
) -> SimulationResult:
    """Build (or reuse) a setup and run one simulation end to end.

    Args:
        config: The run's full parameterisation.
        setup: Optional prebuilt setup for exactly this config; used as
            is, without rebuilding anything.
        base: Optional setup from an earlier config in a sweep; pieces
            unaffected by the config delta (network, traces, interests)
            are recycled from it.
        observer: Optional out-of-band trace observer (see
            :mod:`repro.obs.trace`); attaching one never changes the
            result.
    """
    if setup is None:
        setup = build_setup(config, base=base)
    return make_simulation(setup, observer=observer).run()

"""Unplanned failure schedules: repository crashes and link partitions.

The churn subsystem (:mod:`repro.engine.churn`) models *planned*
membership changes -- a repository announces its join or departure and
the dissemination algorithm is reapplied.  This module models the
failures the tree was never planned for: a repository **crashes**
without warning (messages toward it are lost until it **recovers**) and
a service link goes **down** (messages over it are lost until it comes
back **up**).

Semantics, executed identically by the scalar and vectorized kernels
and mirrored by the live layer
(:class:`~repro.live.harness.LiveFailureController`):

- ``crash``: the repository stops receiving and forwarding.  Updates in
  flight toward it (and any sent later) count as drops.  Its orphaned
  dependents immediately **fail over** to the nearest live ancestor in
  the item's dissemination tree (backup parent); the rewiring reuses the
  churn engine's :class:`~repro.core.dynamics.ReconfigurationDiff`
  machinery and is charged into reconfiguration cost.  Fidelity for the
  crashed repository is scored only over its availability segments.
- ``recover``: the repository rejoins with stale state.  It runs a
  setdiscovery-style **anti-entropy resync** against its live parent:
  one comparison per subscribed item (the discovery round) and one
  transfer only for the items whose copy actually diverged -- the missed
  update-set, never a full state transfer.  Its re-homed dependents are
  then wired back to it.
- ``link_down`` / ``link_up``: messages sent over the named
  ``(sender, receiver)`` service edge while it is down count as drops
  (the sender still pays for them, exactly like seeded Bernoulli loss).

Because the schedule lives inside the frozen
:class:`~repro.engine.config.SimulationConfig`, a config still fully
determines its result -- the determinism contract every subsystem
(sweep merging, the result cache, the live cross-check) rests on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "FailureEvent",
    "FailureSchedule",
    "synthetic_failures",
    "failures_for_config",
    "parse_failure_spec",
]

#: Recognised event kinds, in documentation order.
KINDS = ("crash", "recover", "link_down", "link_up")

#: Kinds that name a repository / a link, respectively.
_REPO_KINDS = ("crash", "recover")
_LINK_KINDS = ("link_down", "link_up")


@dataclass(frozen=True)
class FailureEvent:
    """One timed unplanned failure or repair.

    Attributes:
        time: Simulated time (seconds) at which the event takes effect.
        kind: ``"crash"``, ``"recover"``, ``"link_down"`` or
            ``"link_up"``.
        repository: For crash/recover, the repository concerned.
        link: For link events, the directed ``(sender, receiver)``
            service edge concerned.
    """

    time: float
    kind: str
    repository: int | None = None
    link: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        if self.time != self.time or self.time < 0:
            raise ConfigurationError(
                f"failure event time must be non-negative, got {self.time!r}"
            )
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"unknown failure event kind {self.kind!r}; choose from {KINDS}"
            )
        if self.kind in _REPO_KINDS:
            if self.repository is None or self.link is not None:
                raise ConfigurationError(
                    f"{self.kind} events name a repository, not a link"
                )
        else:
            if self.link is None or self.repository is not None:
                raise ConfigurationError(
                    f"{self.kind} events name a (sender, receiver) link, "
                    "not a repository"
                )
            link = tuple(int(n) for n in self.link)
            if len(link) != 2 or link[0] == link[1]:
                raise ConfigurationError(
                    f"link must be a (sender, receiver) pair of distinct "
                    f"nodes, got {self.link!r}"
                )
            object.__setattr__(self, "link", link)

    @classmethod
    def crash(cls, time: float, repository: int) -> "FailureEvent":
        return cls(time=time, kind="crash", repository=repository)

    @classmethod
    def recover(cls, time: float, repository: int) -> "FailureEvent":
        return cls(time=time, kind="recover", repository=repository)

    @classmethod
    def link_down(cls, time: float, sender: int, receiver: int) -> "FailureEvent":
        return cls(time=time, kind="link_down", link=(sender, receiver))

    @classmethod
    def link_up(cls, time: float, sender: int, receiver: int) -> "FailureEvent":
        return cls(time=time, kind="link_up", link=(sender, receiver))


@dataclass(frozen=True)
class FailureSchedule:
    """An immutable sequence of failure events, sorted by time.

    Construction validates internal consistency: per repository, crash
    and recover events must strictly alternate starting with a crash
    (and at strictly increasing times); per link, down and up events
    likewise.  Node-id ranges are checked against the config in
    :class:`~repro.engine.config.SimulationConfig`.
    """

    events: tuple[FailureEvent, ...] = ()

    def __post_init__(self) -> None:
        events = tuple(self.events)
        for event in events:
            if not isinstance(event, FailureEvent):
                raise ConfigurationError(
                    f"schedule entries must be FailureEvent, got {type(event).__name__}"
                )
        events = tuple(sorted(events, key=lambda e: e.time))
        object.__setattr__(self, "events", events)
        self._check_alternation()

    def _check_alternation(self) -> None:
        down_at: dict = {}  # subject -> time of the open crash/down
        seen: dict = {}  # subject -> time of the subject's last event
        for event in self.events:
            subject = (
                ("repo", event.repository)
                if event.kind in _REPO_KINDS
                else ("link", event.link)
            )
            last = seen.get(subject)
            if last is not None and event.time <= last:
                raise ConfigurationError(
                    f"t={event.time}: events for {subject[0]} {subject[1]} "
                    "must be at strictly increasing times"
                )
            seen[subject] = event.time
            opening = event.kind in ("crash", "link_down")
            if opening:
                if subject in down_at:
                    raise ConfigurationError(
                        f"t={event.time}: {subject[0]} {subject[1]} is already "
                        f"down (since t={down_at[subject]})"
                    )
                down_at[subject] = event.time
            else:
                if subject not in down_at:
                    raise ConfigurationError(
                        f"t={event.time}: {event.kind} for {subject[0]} "
                        f"{subject[1]} without a preceding failure"
                    )
                del down_at[subject]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FailureEvent]:
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def count(self, kind: str) -> int:
        """Number of events of one kind."""
        if kind not in KINDS:
            raise ConfigurationError(f"unknown failure event kind {kind!r}")
        return sum(1 for e in self.events if e.kind == kind)

    def validate_nodes(self, n_repositories: int) -> None:
        """Check event targets against the topology contract.

        Repositories occupy node ids ``1 .. n_repositories``; the source
        cannot crash (the paper's source is the ground truth), and link
        endpoints must be source-or-repository nodes.

        Raises:
            ConfigurationError: on any out-of-range target.
        """
        for event in self.events:
            if event.kind in _REPO_KINDS:
                if not 1 <= event.repository <= n_repositories:
                    raise ConfigurationError(
                        f"t={event.time}: {event.kind} targets repository "
                        f"{event.repository}, outside 1..{n_repositories} "
                        "(the source cannot crash)"
                    )
            else:
                for endpoint in event.link:
                    if not 0 <= endpoint <= n_repositories:
                        raise ConfigurationError(
                            f"t={event.time}: link {event.link} references "
                            f"node {endpoint}, outside 0..{n_repositories}"
                        )

    def crash_windows(self) -> dict[int, list[tuple[float, float | None]]]:
        """Per repository: ``[(t_crash, t_recover-or-None), ...]``.

        Windows are half-open ``[t_crash, t_recover)``, matching the
        kernels' tie-break (failure events apply before same-instant
        deliveries), so a membership test against a window reproduces
        the event-driven semantics exactly.
        """
        windows: dict[int, list[tuple[float, float | None]]] = {}
        for event in self.events:
            if event.kind == "crash":
                windows.setdefault(event.repository, []).append(
                    (float(event.time), None)
                )
            elif event.kind == "recover":
                spans = windows[event.repository]
                spans[-1] = (spans[-1][0], float(event.time))
        return windows

    def link_windows(self) -> dict[tuple[int, int], list[tuple[float, float | None]]]:
        """Per directed link: half-open ``[t_down, t_up)`` windows."""
        windows: dict[tuple[int, int], list[tuple[float, float | None]]] = {}
        for event in self.events:
            if event.kind == "link_down":
                windows.setdefault(event.link, []).append((float(event.time), None))
            elif event.kind == "link_up":
                spans = windows[event.link]
                spans[-1] = (spans[-1][0], float(event.time))
        return windows


def synthetic_failures(
    *,
    repositories,
    span_s: float,
    crashes: int = 0,
    partitions: int = 0,
    links=(),
    seed: int = 0,
    window: tuple[float, float] = (0.05, 0.75),
    downtime: tuple[float, float] = (0.05, 0.20),
) -> FailureSchedule:
    """Generate a consistent random failure schedule with a seeded RNG.

    Each crash picks a distinct repository, each partition a distinct
    service link; every failure gets a matching repair so recovery
    behaviour (failover *and* resync) is observable.  Failure times are
    placed uniformly inside ``window`` (fractions of ``span_s``) and
    downtimes drawn from ``downtime`` (fractions of ``span_s``), so the
    schedule is valid by construction.

    Args:
        repositories: Repository node-id pool crashes draw from.
        span_s: Observation-window length in seconds.
        crashes: Repository crash/recover pairs to schedule.
        partitions: Link down/up pairs to schedule.
        links: ``(sender, receiver)`` service edges partitions draw
            from; required when ``partitions > 0``.
        seed: Seed for the schedule's own RNG.
        window: ``(lo, hi)`` fractions of ``span_s`` holding the
            *failure* instants (repairs may land later).
        downtime: ``(lo, hi)`` fractions of ``span_s`` for each outage's
            duration.

    Raises:
        ConfigurationError: on impossible counts (more crashes than
            repositories, partitions without links, ...).
    """
    if min(crashes, partitions) < 0:
        raise ConfigurationError("failure event counts must be non-negative")
    if span_s <= 0:
        raise ConfigurationError(f"span_s must be positive, got {span_s!r}")
    lo, hi = window
    if not 0.0 <= lo < hi <= 1.0:
        raise ConfigurationError(
            f"window must satisfy 0 <= lo < hi <= 1, got {window!r}"
        )
    d_lo, d_hi = downtime
    if not 0.0 < d_lo <= d_hi:
        raise ConfigurationError(
            f"downtime must satisfy 0 < lo <= hi, got {downtime!r}"
        )
    repos = sorted({int(r) for r in repositories})
    if crashes > len(repos):
        raise ConfigurationError(
            f"cannot schedule {crashes} crashes over {len(repos)} repositories"
        )
    edges = sorted({(int(u), int(v)) for u, v in links})
    if partitions > len(edges):
        raise ConfigurationError(
            f"cannot schedule {partitions} partitions over {len(edges)} links"
        )
    if crashes + partitions == 0:
        return FailureSchedule()

    rng = np.random.default_rng(seed)
    events: list[FailureEvent] = []
    targets = [repos[i] for i in rng.choice(len(repos), size=crashes, replace=False)]
    for repo in targets:
        t_down = float(rng.uniform(lo * span_s, hi * span_s))
        t_up = t_down + float(rng.uniform(d_lo * span_s, d_hi * span_s))
        events.append(FailureEvent.crash(t_down, repo))
        events.append(FailureEvent.recover(t_up, repo))
    cut = [edges[i] for i in rng.choice(len(edges), size=partitions, replace=False)]
    for sender, receiver in cut:
        t_down = float(rng.uniform(lo * span_s, hi * span_s))
        t_up = t_down + float(rng.uniform(d_lo * span_s, d_hi * span_s))
        events.append(FailureEvent.link_down(t_down, sender, receiver))
        events.append(FailureEvent.link_up(t_up, sender, receiver))
    return FailureSchedule(tuple(events))


def failures_for_config(
    config,
    *,
    crashes: int = 0,
    partitions: int = 0,
    seed: int | None = None,
    setup=None,
):
    """Synthesise a schedule matched to a :class:`SimulationConfig`.

    Crash targets are drawn preferentially from repositories that
    *serve* other repositories in the built ``d3g`` (interior nodes), so
    crashes actually exercise failover; partition targets are real
    service edges of the same graph.  The build is deterministic, so the
    same config always yields the same schedule.

    Args:
        config: The run's :class:`~repro.engine.config.SimulationConfig`
            (without the failure schedule being generated).
        crashes / partitions: Event-pair counts per kind.
        seed: Schedule RNG seed; defaults to ``config.seed``.
        setup: Optional prebuilt setup for exactly this config (skips
            rebuilding the topology and ``d3g``).

    Returns:
        The generated :class:`FailureSchedule`.
    """
    # Local import: the builder imports the config module, which imports
    # this one -- resolving the setup lazily breaks the cycle.
    from repro.engine.builder import build_setup

    if crashes + partitions == 0:
        return FailureSchedule()
    if setup is None:
        setup = build_setup(config.with_(failures=None))
    graph = setup.graph
    edges: set[tuple[int, int]] = set()
    interior: set[int] = set()
    for node, state in graph.nodes.items():
        for child, items in state.children.items():
            if items:
                edges.add((node, child))
                if node != setup.source:
                    interior.add(node)
    pool = sorted(interior) if len(interior) >= crashes else sorted(
        set(graph.nodes) - {setup.source}
    )
    return synthetic_failures(
        repositories=pool,
        span_s=float(max(config.trace_samples - 1, 1)),
        crashes=crashes,
        partitions=partitions,
        links=edges,
        seed=config.seed if seed is None else seed,
    )


def parse_failure_spec(text: str) -> tuple[int, int]:
    """Parse the CLI's ``--failures CRASHES,PARTITIONS`` counts.

    Raises:
        ConfigurationError: on malformed specs or negative counts.
    """
    parts = [p.strip() for p in text.split(",")]
    if len(parts) != 2:
        raise ConfigurationError(
            f"failure spec must be 'CRASHES,PARTITIONS', got {text!r}"
        )
    try:
        crashes, partitions = (int(p) for p in parts)
    except ValueError:
        raise ConfigurationError(
            f"failure spec must hold two integers, got {text!r}"
        ) from None
    if min(crashes, partitions) < 0:
        raise ConfigurationError(
            f"failure counts must be non-negative, got {text!r}"
        )
    return crashes, partitions

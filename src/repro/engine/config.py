"""Simulation configuration and scale presets.

One :class:`SimulationConfig` fully determines a run: the same config
(same seed) always produces the same result.  Everything a run needs is
a *value* inside the config -- including the workload that generates the
update streams (:mod:`repro.workloads`) and any mid-run churn schedule
(:mod:`repro.engine.churn`).  The paper's base case is the ``paper``
preset -- 1 source, 100 repositories, 600 routers, Pareto link delays
with a 15 ms mean, 12.5 ms computational delay, traces of 10 000
one-second samples.  The ``small``/``tiny`` presets shrink the
workload for experiment sweeps and CI respectively while keeping every
ratio (router:repository, change rate, delay scales) intact.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.dissemination.filtering import FILTERED_POLICIES, validate_tolerance
from repro.engine.adaptive import AdaptivePolicy
from repro.engine.churn import ChurnSchedule
from repro.engine.failures import FailureSchedule
from repro.errors import ConfigurationError
from repro.workloads import Table1Workload, Workload

__all__ = ["SimulationConfig", "SCALE_PRESETS", "KERNELS"]

#: Engine kernels a config may request.  ``auto`` picks the vectorized
#: array-backed engine whenever the run supports it (no churn, one of the
#: four push policies) and falls back to the scalar oracle otherwise;
#: ``scalar``/``vectorized`` force one side (``vectorized`` errors when
#: the run is unsupported).  Both produce bit-identical results -- the
#: golden suite in ``tests/engine/test_vectorized_golden.py`` pins it.
KERNELS = ("auto", "scalar", "vectorized")


@dataclass(frozen=True)
class SimulationConfig:
    """Everything one dissemination simulation needs.

    Attributes:
        seed: Master seed for all random streams.
        n_repositories: Repository count (paper: 100).
        n_routers: Router count (paper: 600).
        avg_degree: Physical-mesh average node degree.
        link_delay_mean_ms: Mean Pareto link delay (paper: 15 ms). The
            delay-sweep experiments rescale this; ``0`` gives an
            idealised zero-delay network.
        link_delay_min_ms: Minimum Pareto link delay (paper: 2 ms).
        comm_target_ms: When set, uniformly rescale all network delays
            so the mean repository-to-repository end-to-end delay hits
            this value (the x-axis of Figures 5 and 7b); ``0`` gives the
            idealised zero-delay network.
        comp_delay_ms: Computational delay to disseminate one update to
            one dependent (paper: 12.5 ms).
        n_items: Number of dynamic data items.
        trace_samples: Polled samples per trace (paper: 10 000 at 1/s).
        workload: The :class:`~repro.workloads.Workload` generating the
            per-item update streams.  The default
            :class:`~repro.workloads.Table1Workload` reproduces the
            paper's stationary Table 1-calibrated traces bit for bit;
            alternatives (flash crowds, diurnal cycles, CSV replay) live
            in :mod:`repro.workloads`.  Workloads are frozen, hashable
            specs, so the config -- and with it sweep merging and churn
            replay -- stays fully value-determined.
        subscription_probability: P(repository wants an item) (paper: 0.5).
        t_percent: The paper's T -- % of items with stringent tolerances.
        policy: Dissemination policy name (see
            :func:`repro.core.dissemination.make_policy`).
        offered_degree: Cooperative resources each node offers (the
            sweep variable of Figures 3/7/8; the paper's ``cResources``
            when ``controlled_cooperation`` is on).
        controlled_cooperation: Clamp the offered degree with Eq. (2).
        interest_fraction_f: Eq. (2)'s ``f`` (paper default 50).
        preference: LeLA preference function, ``"p1"`` or ``"p2"``.
        p_percent: LeLA load-controller admission band (paper: 5%).
        message_loss_probability: Failure-injection knob -- probability
            an update message is silently lost in the network (the paper
            assumes a reliable network; 0 reproduces it).
        kernel: Which engine runs the event loop: ``auto`` (default)
            uses the vectorized array-backed kernel whenever the run
            supports it and the scalar oracle otherwise; ``scalar``
            forces the oracle; ``vectorized`` forces the array kernel
            and errors when the run is unsupported (churn, or a policy
            outside the four push policies).  The two kernels are
            bit-identical wherever both apply, so this knob never
            changes results -- only wall-clock.
        clients_per_repository: Modeled end-clients attached to each
            repository (0 reproduces the paper's repository-only plane).
            Each client subscribes to one of its repository's items and
            is served by the repository-local Eq. (3) + Eq. (7) filter
            at the client's own (less stringent) tolerance, exactly as
            the live layer serves its clients; client traffic is
            accounted separately (``client_checks``/``client_messages``)
            and never feeds back into repository-plane queueing.
        churn: Optional mid-run churn schedule (timed joins, departures
            and coherency changes; see :mod:`repro.engine.churn`).
            ``None`` -- or an empty schedule, which is normalised to
            ``None`` -- reproduces the paper's static membership.  When
            events are present, the initial graph is built through
            :class:`~repro.core.dynamics.DynamicMembership` so mid-run
            rebuilds replay the same join order.
        failures: Optional unplanned-failure schedule (repository
            crash/recover events, link down/up windows; see
            :mod:`repro.engine.failures`).  ``None`` -- or an empty
            schedule, normalised to ``None`` -- reproduces the paper's
            reliable network.  Executed identically by both kernels:
            messages toward crashed repositories or over down links
            count as drops, orphaned dependents fail over to a backup
            parent (charged as reconfiguration cost), and recovering
            repositories anti-entropy-resync only their missed
            update-set.  Mutually exclusive with ``churn`` (planned and
            unplanned membership change use different graph-evolution
            machinery).
        adaptive: Optional online re-optimization policy (see
            :mod:`repro.engine.adaptive`).  ``None`` reproduces the
            paper's static ``d3g``.  When set, both kernels run a
            drift-triggered controller that re-applies LeLA with
            observed load folded into the level ranking and rewires
            only the changed service edges live, charging every rewire
            into reconfiguration cost.  Composable with workloads and
            loss; mutually exclusive with ``churn`` and ``failures``
            (all three reconfigure the same graph), and restricted to
            the four push policies both kernels share.
    """

    seed: int = 20020812
    n_repositories: int = 100
    n_routers: int = 600
    avg_degree: float = 3.0
    link_delay_mean_ms: float = 15.0
    link_delay_min_ms: float = 2.0
    comm_target_ms: float | None = None
    comp_delay_ms: float = 12.5
    n_items: int = 20
    trace_samples: int = 10_000
    workload: Workload = field(default_factory=Table1Workload)
    subscription_probability: float = 0.5
    t_percent: float = 80.0
    policy: str = "distributed"
    offered_degree: int = 4
    controlled_cooperation: bool = False
    interest_fraction_f: float = 50.0
    preference: str = "p1"
    p_percent: float = 5.0
    message_loss_probability: float = 0.0
    kernel: str = "auto"
    clients_per_repository: int = 0
    churn: ChurnSchedule | None = None
    failures: FailureSchedule | None = None
    adaptive: AdaptivePolicy | None = None

    def __post_init__(self) -> None:
        if self.n_repositories < 1:
            raise ConfigurationError("n_repositories must be >= 1")
        if self.n_routers < 0:
            raise ConfigurationError("n_routers must be >= 0")
        if self.n_items < 1:
            raise ConfigurationError("n_items must be >= 1")
        if self.trace_samples < 2:
            raise ConfigurationError("trace_samples must be >= 2")
        if self.comp_delay_ms < 0:
            raise ConfigurationError("comp_delay_ms must be >= 0")
        if self.link_delay_mean_ms < 0:
            raise ConfigurationError("link_delay_mean_ms must be >= 0")
        if self.comm_target_ms is not None and self.comm_target_ms < 0:
            raise ConfigurationError("comm_target_ms must be >= 0 when set")
        if self.offered_degree < 1:
            raise ConfigurationError("offered_degree must be >= 1")
        if not 0.0 <= self.t_percent <= 100.0:
            raise ConfigurationError("t_percent must be in [0, 100]")
        if self.interest_fraction_f <= 0:
            raise ConfigurationError("interest_fraction_f must be positive")
        if not 0.0 <= self.message_loss_probability < 1.0:
            raise ConfigurationError(
                "message_loss_probability must be in [0, 1)"
            )
        if not isinstance(self.workload, Workload):
            raise ConfigurationError(
                f"workload must be a Workload, got {type(self.workload).__name__} "
                "(build one with repro.workloads.make_workload)"
            )
        self.workload.validate()
        if self.kernel not in KERNELS:
            raise ConfigurationError(
                f"kernel must be one of {list(KERNELS)}, got {self.kernel!r}"
            )
        if self.kernel == "vectorized":
            if self.churn:
                raise ConfigurationError(
                    "kernel='vectorized' does not support churn schedules; "
                    "use kernel='auto' (falls back to the scalar engine) or "
                    "kernel='scalar'"
                )
            if self.policy not in FILTERED_POLICIES:
                raise ConfigurationError(
                    f"kernel='vectorized' supports policies {list(FILTERED_POLICIES)}, "
                    f"got {self.policy!r}"
                )
        if self.clients_per_repository < 0:
            raise ConfigurationError("clients_per_repository must be >= 0")
        if self.churn is not None and not isinstance(self.churn, ChurnSchedule):
            raise ConfigurationError(
                f"churn must be a ChurnSchedule or None, got {type(self.churn).__name__}"
            )
        if self.churn is not None:
            # Churn events inject *user-supplied* coherency tolerances
            # mid-run; reject non-finite or sub-quantum ones here, at
            # build time, rather than letting quantisation collapse them
            # to 0.0 deep inside a reconfiguration.
            for event in self.churn:
                for item_id, c in event.requirements or ():
                    validate_tolerance(
                        c,
                        f"churn {event.kind} for repository {event.repository}, "
                        f"item {item_id}: tolerance",
                    )
        if self.churn is not None and not self.churn:
            # An empty schedule is exactly static membership; normalise
            # so both spellings share one graph-construction path (and
            # one hash bucket in sweep merging).
            object.__setattr__(self, "churn", None)
        if self.failures is not None and not isinstance(self.failures, FailureSchedule):
            raise ConfigurationError(
                "failures must be a FailureSchedule or None, got "
                f"{type(self.failures).__name__}"
            )
        if self.failures is not None and not self.failures:
            # An empty schedule is exactly the reliable network;
            # normalise for the same single-path/hash-bucket reasons.
            object.__setattr__(self, "failures", None)
        if self.failures is not None:
            if self.churn is not None:
                raise ConfigurationError(
                    "churn and failure schedules cannot be combined in one "
                    "run: planned membership change rebuilds the graph while "
                    "unplanned failure reroutes within it"
                )
            self.failures.validate_nodes(self.n_repositories)
        if self.adaptive is not None:
            if not isinstance(self.adaptive, AdaptivePolicy):
                raise ConfigurationError(
                    "adaptive must be an AdaptivePolicy or None, got "
                    f"{type(self.adaptive).__name__}"
                )
            if self.churn is not None:
                raise ConfigurationError(
                    "adaptive re-optimization cannot be combined with a churn "
                    "schedule in one run: both rebuild the dissemination graph "
                    "and their rebuild rules do not compose (yet)"
                )
            if self.failures is not None:
                raise ConfigurationError(
                    "adaptive re-optimization cannot be combined with a "
                    "failure schedule in one run: failover and drift-triggered "
                    "rewiring would contend for the same edges"
                )
            if self.policy not in FILTERED_POLICIES:
                raise ConfigurationError(
                    f"adaptive re-optimization supports policies "
                    f"{list(FILTERED_POLICIES)}, got {self.policy!r}"
                )

    def with_(self, **overrides) -> "SimulationConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)


#: Named scale presets.  ``paper`` matches the paper's base case except
#: for the item count (the paper used up to 100 traces; 20 keeps the
#: pure-Python run tractable -- scale ``n_items`` up to match exactly).
SCALE_PRESETS: dict[str, SimulationConfig] = {
    "tiny": SimulationConfig(
        n_repositories=20,
        n_routers=60,
        n_items=6,
        trace_samples=600,
    ),
    "small": SimulationConfig(
        n_repositories=50,
        n_routers=200,
        n_items=10,
        trace_samples=2_500,
    ),
    "paper": SimulationConfig(
        n_repositories=100,
        n_routers=600,
        n_items=20,
        trace_samples=10_000,
    ),
    # An order of magnitude past the paper's grids (ROADMAP item 1):
    # 10^3 repositories serving 10^6 modeled clients.  Router count is
    # kept moderate because all-pairs routing is cubic in node count and
    # orthogonal to the dissemination behaviour under study; the
    # vectorized kernel is what makes this preset tractable (the scalar
    # oracle still runs it, ~10x+ slower -- pinned in
    # ``benchmarks/bench_scalability.py``).
    "scalability": SimulationConfig(
        n_repositories=1_000,
        n_routers=250,
        n_items=8,
        trace_samples=2_000,
        clients_per_repository=1_000,
    ),
}

"""Pull-based dissemination baselines (the paper's Section 8 outlook).

The paper's architecture is push-based; its conclusions point at pull,
adaptive push-pull combinations and leases as alternatives (citing
Srinivasan et al.'s TTR work).  This module implements the pull side so
the comparison can actually be run:

- **Fixed TTR**: every repository polls the source for every item of
  interest once per *time to refresh*.  Cheap to implement, but the TTR
  must be guessed: too long loses fidelity, too short floods the source
  with poll traffic (each poll costs the source the same serialised
  computational delay an update push would).
- **Adaptive TTR**: the classic multiplicative-decrease /
  additive-increase adaptation — when a poll reveals a change larger
  than the repository's tolerance the TTR shrinks (the item is hot);
  quiet polls let it grow back toward the maximum.

Both poll the *source directly* (no cooperation), which is exactly why
push through a cooperative d3g wins at scale: the pull source does
O(repositories x items) work where the push source does O(degree).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fidelity import FidelityAccumulator, loss_of_fidelity
from repro.core.metrics import CostCounters
from repro.engine.builder import SimulationSetup
from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator
from repro.sim.queueing import FifoStation

__all__ = ["TtrConfig", "PullSimulation", "run_pull_simulation"]


@dataclass(frozen=True)
class TtrConfig:
    """Time-to-refresh policy parameters.

    Attributes:
        mode: ``"fixed"`` or ``"adaptive"``.
        ttr_s: The fixed TTR, and the adaptive variant's initial TTR.
        ttr_min_s: Adaptive lower bound (hot items poll this fast).
        ttr_max_s: Adaptive upper bound (quiet items back off to this).
        shrink: Multiplicative decrease applied on a tolerance-exceeding
            change (0 < shrink < 1).
        grow: Additive increase (seconds) applied after a quiet poll.
    """

    mode: str = "fixed"
    ttr_s: float = 10.0
    ttr_min_s: float = 1.0
    ttr_max_s: float = 60.0
    shrink: float = 0.5
    grow: float = 2.0

    def __post_init__(self) -> None:
        if self.mode not in ("fixed", "adaptive"):
            raise ConfigurationError(
                f"mode must be 'fixed' or 'adaptive', got {self.mode!r}"
            )
        if self.ttr_s <= 0:
            raise ConfigurationError(f"ttr_s must be positive, got {self.ttr_s!r}")
        if not 0 < self.ttr_min_s <= self.ttr_max_s:
            raise ConfigurationError(
                f"need 0 < ttr_min_s <= ttr_max_s, got "
                f"({self.ttr_min_s!r}, {self.ttr_max_s!r})"
            )
        if not 0.0 < self.shrink < 1.0:
            raise ConfigurationError(f"shrink must be in (0, 1), got {self.shrink!r}")
        if self.grow < 0.0:
            raise ConfigurationError(f"grow must be >= 0, got {self.grow!r}")


class PullSimulation:
    """Every repository polls the source directly; no cooperation.

    One poll = request travels repo->source, the source serves it
    (serialised ``comp_delay`` like a push check), the response travels
    source->repo carrying the value the source held *when it processed
    the request*.  Two messages are charged per poll.
    """

    def __init__(self, setup: SimulationSetup, ttr: TtrConfig) -> None:
        self.setup = setup
        self.ttr = ttr
        self.kernel = Simulator()
        self.counters = CostCounters()
        self._source_station = FifoStation(name="source")
        self._comp_delay_s = setup.config.comp_delay_ms / 1000.0
        self._deliveries: dict[tuple[int, int], list[tuple[float, float]]] = {}
        self._current_ttr: dict[tuple[int, int], float] = {}
        self._end_s = max(float(t.times[-1]) for t in setup.traces.values())

    # ------------------------------------------------------------------

    def _schedule_poll(self, repo: int, item_id: int, at: float) -> None:
        if at > self._end_s:
            return
        self.kernel.schedule_at(at, self._send_request, repo, item_id)

    def _send_request(self, repo: int, item_id: int) -> None:
        self.counters.record_message(repo, is_source=False)  # the request
        arrival = self.kernel.now + self.setup.network.delay_s(
            repo, self.setup.source
        )
        self.kernel.schedule_at(arrival, self._serve_request, repo, item_id)

    def _serve_request(self, repo: int, item_id: int) -> None:
        # The source spends one computational delay per served poll,
        # serialised with every other poll it is handling.
        done = self._source_station.submit(self.kernel.now, self._comp_delay_s)
        self.counters.record_check(self.setup.source, is_source=True)
        trace = self.setup.traces[item_id]
        value = trace.value_at(min(done, self._end_s))
        self.counters.record_message(self.setup.source, is_source=True)
        arrival = done + self.setup.network.delay_s(self.setup.source, repo)
        self.kernel.schedule_at(arrival, self._receive_response, repo, item_id, value)

    def _receive_response(self, repo: int, item_id: int, value: float) -> None:
        self.counters.record_delivery()
        key = (repo, item_id)
        log = self._deliveries[key]
        previous = log[-1][1]
        log.append((self.kernel.now, value))

        ttr = self._current_ttr[key]
        if self.ttr.mode == "adaptive":
            c = self.setup.profiles[repo].requirements[item_id]
            if abs(value - previous) > c:
                ttr = max(self.ttr.ttr_min_s, ttr * self.ttr.shrink)
            else:
                ttr = min(self.ttr.ttr_max_s, ttr + self.ttr.grow)
            self._current_ttr[key] = ttr
        self._schedule_poll(repo, item_id, self.kernel.now + ttr)

    # ------------------------------------------------------------------

    def run(self):
        """Poll until the traces end; return a push-compatible result."""
        from repro.engine.results import SimulationResult

        rng_offsets = iter(range(10_000_000))
        for repo, profile in self.setup.profiles.items():
            for item_id in profile.requirements:
                key = (repo, item_id)
                initial = self.setup.traces[item_id].initial_value
                self._deliveries[key] = [(0.0, initial)]
                self._current_ttr[key] = self.ttr.ttr_s
                # De-phase the first polls deterministically so the whole
                # fleet does not hit the source in the same instant.
                offset = (next(rng_offsets) % 97) / 97.0 * self.ttr.ttr_s
                self._schedule_poll(repo, item_id, offset)
        self.kernel.run()

        accumulator = FidelityAccumulator()
        per_pair: dict[tuple[int, int], float] = {}
        span = 0.0
        for (repo, item_id), log in self._deliveries.items():
            trace = self.setup.traces[item_id]
            span = max(span, trace.span)
            c = self.setup.profiles[repo].requirements[item_id]
            loss = loss_of_fidelity(
                trace.times,
                trace.values,
                [t for t, _ in log],
                [v for _, v in log],
                c,
                t_start=float(trace.times[0]),
                t_end=float(trace.times[-1]),
            )
            accumulator.add(repo, item_id, loss)
            per_pair[(repo, item_id)] = loss
        return SimulationResult(
            loss_of_fidelity=accumulator.system_loss(),
            per_repository_loss=accumulator.per_repository(),
            counters=self.counters,
            tree_stats=self.setup.graph.stats(),
            effective_degree=0,  # pull uses no cooperative fan-out
            avg_comm_delay_ms=self.setup.avg_comm_delay_ms,
            events_processed=self.kernel.events_processed,
            sim_span_s=span,
            extras={
                "mode": f"pull-{self.ttr.mode}",
                "ttr_s": self.ttr.ttr_s,
                "per_pair_loss": per_pair,
            },
        )


def run_pull_simulation(setup: SimulationSetup, ttr: TtrConfig):
    """Convenience wrapper mirroring :func:`repro.engine.run_simulation`."""
    return PullSimulation(setup, ttr).run()

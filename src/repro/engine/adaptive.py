"""Online adaptive re-optimization of the dissemination graph.

The paper builds the LeLA ``d3g`` once, from static interest profiles
(Section 4), and re-applies the algorithm only when *requirements*
change.  The workload subsystem (``flash_crowd``, ``diurnal``) generates
traffic drift a static graph is blind to: a subtree sized for the
calibration traffic becomes a hotspot when its items burst.  This module
closes the loop -- it watches the per-node traffic the running kernel
already counts, estimates drift over sliding windows, and when the drift
exceeds a configurable threshold it re-runs LeLA with the observed load
folded into the level ranking (:func:`repro.core.lela.reoptimize_d3g`)
and applies only the edge-level
:class:`~repro.core.dynamics.ReconfigurationDiff` through the same
live-rewiring path churn and failover use.  Every applied rewire is
charged into ``CostCounters.reconfigurations`` /
``edges_added`` / ``edges_removed`` -- adaptation pays for itself
honestly in the cost model.

Determinism contract: the controller consumes only per-node cumulative
message counts at kernel-scheduled tick instants, and both kernels
process the identical event set before any tick fires (ticks win
same-instant ties against trace deliveries, exactly like failure
events).  The re-optimization itself replays LeLA over the original
insertion order with a fresh ``lela`` stream seeded from the config, so
a :class:`~repro.engine.config.SimulationConfig` carrying an
:class:`AdaptivePolicy` still *fully determines* its result -- scalar,
vectorized and the live in-process transport all make bit-identical
rewiring decisions.

The policy is mutually exclusive with churn and failure schedules for
now: all three reconfigure the same graph, and composing their rebuild
rules is future work (the interaction matrix is documented in
``docs/architecture/adaptive.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from repro.core.dynamics import ReconfigurationDiff, edges_of
from repro.core.lela import reoptimize_d3g
from repro.core.preference import get_preference_function
from repro.errors import ConfigurationError
from repro.sim.rng import RandomStreams

__all__ = [
    "AdaptivePolicy",
    "DriftEstimator",
    "AdaptiveController",
    "parse_adaptive_spec",
]

#: Recognised re-optimization scopes.
SCOPES = ("subtree", "global")


@dataclass(frozen=True)
class AdaptivePolicy:
    """Frozen, hashable spec of one adaptive re-optimization policy.

    Carried inside :class:`~repro.engine.config.SimulationConfig`
    (``adaptive=``), so it participates in config hashing, sweep
    dedup and the experiment result cache like every other knob.

    Attributes:
        window: Sliding-window length in simulated seconds.  The
            controller ticks at ``window, 2*window, ...`` and compares
            consecutive windows of per-node traffic.
        threshold: Relative drift that triggers re-optimization: a node
            is *hot* when its window-over-window message count changed
            by at least this fraction (``0.75`` = 75%).
        cooldown: Minimum simulated seconds between two *applied*
            rewires.  ``0`` disables the brake.
        scope: ``"subtree"`` feeds only the hot nodes' observed load
            into LeLA's level ranking (re-homing concentrates around
            the drifting subtree); ``"global"`` feeds every node's
            drift, allowing the whole graph to rebalance.
        max_rewires: Cap on applied rewires per run; ``0`` = unlimited.
    """

    window: float = 60.0
    threshold: float = 0.75
    cooldown: float = 0.0
    scope: str = "subtree"
    max_rewires: int = 8

    def __post_init__(self) -> None:
        if not (isinstance(self.window, (int, float)) and math.isfinite(self.window)) or self.window <= 0:
            raise ConfigurationError(
                f"adaptive window must be finite and > 0, got {self.window!r}"
            )
        if not (isinstance(self.threshold, (int, float)) and math.isfinite(self.threshold)) or self.threshold <= 0:
            raise ConfigurationError(
                f"adaptive threshold must be finite and > 0, got {self.threshold!r}"
            )
        if not (isinstance(self.cooldown, (int, float)) and math.isfinite(self.cooldown)) or self.cooldown < 0:
            raise ConfigurationError(
                f"adaptive cooldown must be finite and >= 0, got {self.cooldown!r}"
            )
        if self.scope not in SCOPES:
            raise ConfigurationError(
                f"adaptive scope must be one of {SCOPES}, got {self.scope!r}"
            )
        if not isinstance(self.max_rewires, int) or self.max_rewires < 0:
            raise ConfigurationError(
                f"adaptive max_rewires must be an int >= 0, got {self.max_rewires!r}"
            )
        object.__setattr__(self, "window", float(self.window))
        object.__setattr__(self, "threshold", float(self.threshold))
        object.__setattr__(self, "cooldown", float(self.cooldown))


class DriftEstimator:
    """Window-over-window relative drift of per-node traffic.

    Fed *cumulative* per-node message counts at each tick, it
    differences them into per-window counts and reports, per node, the
    relative change between the two most recent windows:

    ``drift[n] = |w_cur[n] - w_prev[n]| / max(w_prev[n], 1)``

    The first window establishes the baseline (no drift reported), so a
    stationary workload -- equal counts every window -- never drifts.
    Pure-python integer arithmetic on sorted node ids keeps the
    estimate bit-identical across kernels.
    """

    def __init__(self) -> None:
        self._cumulative: dict[int, int] = {}
        self._window: dict[int, int] | None = None

    def observe(self, cumulative: dict[int, int]) -> dict[int, float]:
        """Fold in one tick's cumulative counts; return per-node drift.

        Returns only strictly positive drifts (``{}`` on the baseline
        window and for stationary traffic).
        """
        window = {
            node: int(count) - self._cumulative.get(node, 0)
            for node, count in cumulative.items()
            if int(count) - self._cumulative.get(node, 0) != 0
        }
        self._cumulative = {node: int(count) for node, count in cumulative.items()}
        previous, self._window = self._window, window
        if previous is None:
            return {}
        drifts: dict[int, float] = {}
        for node in sorted(set(previous) | set(window)):
            w_prev = previous.get(node, 0)
            w_cur = window.get(node, 0)
            drift = abs(w_cur - w_prev) / max(w_prev, 1)
            if drift > 0:
                drifts[node] = drift
        return drifts


class AdaptiveController:
    """Drift-triggered LeLA re-optimization over a built setup.

    One controller instance belongs to one run (scalar kernel,
    vectorized kernel or live network); it owns the *current* graph --
    initially ``setup.graph``, rebound on every applied rewire -- while
    the setup itself stays read-only and shareable.

    Attributes:
        graph: The current dissemination graph (never mutated in place;
            rebuilds rebind it).
        policy: The driving :class:`AdaptivePolicy`.
        ticks: Drift evaluations performed.
        triggered: Ticks whose drift crossed the threshold.
        rewires: Re-optimizations actually applied (non-empty diff,
            cooldown and cap permitting).
    """

    def __init__(self, setup, policy: AdaptivePolicy | None = None) -> None:
        config = setup.config
        self.policy = policy if policy is not None else config.adaptive
        if self.policy is None:
            raise ConfigurationError(
                "AdaptiveController needs an AdaptivePolicy (config.adaptive)"
            )
        self.graph = setup.graph
        self._source = setup.source
        self._delay_ms = setup.network.delay_ms
        self._degree = setup.effective_degree
        self._preference = get_preference_function(config.preference)
        self._p_percent = config.p_percent
        self._seed = config.seed
        self._profiles = [setup.profiles[r] for r in sorted(setup.profiles)]
        self._estimator = DriftEstimator()
        self._last_rewire: float | None = None
        self.ticks = 0
        self.triggered = 0
        self.rewires = 0
        #: Per-node drift values from the most recent tick -- telemetry
        #: only; nothing in the control loop reads it back.
        self.last_drifts: dict[int, float] = {}

    def tick_times(self, span: float) -> list[float]:
        """Tick instants inside the observation window: ``w, 2w, ...``.

        Computed by repeated addition (not multiplication) so every
        consumer -- both kernels and the live transport -- schedules the
        exact same floats.
        """
        times: list[float] = []
        t = self.policy.window
        while t <= span:
            times.append(t)
            t += self.policy.window
        return times

    def on_tick(self, now: float, per_node_messages: dict[int, int]) -> ReconfigurationDiff | None:
        """Evaluate drift at ``now``; return the diff to apply, if any.

        Args:
            now: Simulated time of the tick.
            per_node_messages: *Cumulative* per-node sent-message counts
                at this instant (``CostCounters.per_node_messages``).

        Returns:
            The edge-level diff of an applied re-optimization, or
            ``None`` when nothing crossed the threshold, the cooldown
            or rewire cap vetoed, or the rebuild changed no edges.
        """
        policy = self.policy
        self.ticks += 1
        drifts = self._estimator.observe(per_node_messages)
        self.last_drifts = drifts
        hot = [node for node in sorted(drifts) if drifts[node] >= policy.threshold]
        if not hot:
            return None
        self.triggered += 1
        if (
            self._last_rewire is not None
            and policy.cooldown > 0
            and now - self._last_rewire < policy.cooldown
        ):
            return None
        if policy.max_rewires and self.rewires >= policy.max_rewires:
            return None
        if policy.scope == "subtree":
            load = {node: drifts[node] for node in hot}
        else:
            load = dict(drifts)
        new_graph = reoptimize_d3g(
            profiles=self._profiles,
            source=self._source,
            comm_delay_ms=self._delay_ms,
            offered_degree=self._degree,
            preference=self._preference,
            p_percent=self._p_percent,
            rng=RandomStreams(self._seed).stream("lela"),
            node_load=load,
        )
        before = edges_of(self.graph)
        after = edges_of(new_graph)
        diff = ReconfigurationDiff(added=after - before, removed=before - after)
        if diff.unchanged_is_cheap:
            return None
        self.graph = new_graph
        self.rewires += 1
        self._last_rewire = now
        return diff


#: ``parse_adaptive_spec`` key -> (coercion, AdaptivePolicy field).
_SPEC_KEYS = {
    "window": float,
    "threshold": float,
    "cooldown": float,
    "scope": str,
    "max_rewires": int,
}


def parse_adaptive_spec(text: str) -> AdaptivePolicy:
    """Parse the CLI's ``--adaptive k=v,...`` spec into a policy.

    An empty spec (``""``) yields the default policy.  Example::

        window=40,threshold=0.5,scope=global,max_rewires=4

    Raises:
        ConfigurationError: on unknown keys or uncoercible values.
    """
    kwargs: dict = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        key = key.strip()
        if not sep or key not in _SPEC_KEYS:
            raise ConfigurationError(
                f"adaptive spec entries are KEY=VALUE with KEY in "
                f"{tuple(_SPEC_KEYS)}, got {part!r}"
            )
        try:
            kwargs[key] = _SPEC_KEYS[key](value.strip())
        except ValueError:
            raise ConfigurationError(
                f"adaptive spec value for {key!r} must be "
                f"{_SPEC_KEYS[key].__name__}, got {value.strip()!r}"
            ) from None
    return AdaptivePolicy(**kwargs)

"""The vectorized array-backed dissemination engine.

Same simulation, different data layout.  The scalar engine
(:class:`~repro.engine.simulation.DisseminationSimulation`) walks one
Python object per message and one dict lookup per dependent; this engine
regroups the run into struct-of-arrays form so every hot-path step is a
handful of numpy calls over *all* dependents of an edge group at once:

- **Edge groups.**  Each (node, item) pair that sends or receives
  becomes one integer group id.  A group stores its dependents as
  parallel arrays -- child group ids, serving tolerances (quantised for
  the centralised policy, exactly as the scalar policy stores them),
  per-edge last-sent values, and precomputed end-to-end delays -- plus
  the scalars the decision needs (the node's own receive coherency,
  whether it is the source).
- **Decisions.**  One update against a group evaluates Eq. (3)/Eq. (7),
  the Eq. (3)-only test, the flooding distinct-value test, or the
  centralised tag cover over the whole dependent array via the
  ``*_many`` mirrors in :mod:`repro.core.dissemination.filtering` --
  elementwise bit-identical to the scalar functions.
- **Queueing.**  The FIFO station's chained ``busy_until`` additions
  become one ``cumsum`` whose first element carries the start offset;
  sequential accumulation reproduces the scalar chain bit for bit.
- **Events.**  A :class:`~repro.sim.kernel.BatchKernel` merges the
  precomputed source timeline with a tuple heap of in-flight
  deliveries -- no per-message Event objects, no callback dispatch.
- **Counters.**  :class:`~repro.core.metrics.ArrayCounters` accumulates
  per-node tallies in dense arrays, folded into
  :class:`~repro.core.metrics.CostCounters` once at the end.

The scalar engine stays the **oracle**: this class subclasses it, reuses
its preparation (children maps, receive coherencies, delivery logs,
scoring segments, the registered scalar policy -- the single source of
truth for what exists in the network) and its scoring, and replaces only
the event loop.  ``tests/engine/test_vectorized_golden.py`` pins
bit-identical results (loss, per-pair losses, every counter field)
across policies and workloads.

Unplanned failures (:mod:`repro.engine.failures`) **are** supported:
the drain loop applies pending failure events before each unit (the
same tie-break the scalar kernel's event queue produces), arrivals at
crashed repositories and sends over down links become drops before the
Bernoulli loss stream is consumed, and failover/restore
reconfigurations patch the edge-group arrays in the exact order the
scalar ``_apply_diff`` wires them (for the centralised policy, the
:class:`~repro.core.dissemination.filtering.ArraySourceTagger` replays
the scalar tagger's remove/re-add transitions edge for edge).

Adaptive re-optimization (:mod:`repro.engine.adaptive`) is supported
the same way: drift ticks are applied inline before each unit at the
exact instants the scalar kernel schedules them, the controller reads
this engine's dense per-node message tallies sparsified into the
identical dict the scalar counters hold, and applied rewires patch the
edge-group arrays through the same ``_apply_diff`` override --
including groups that exist only in the re-optimized graph, which are
materialised on first use.

Not supported here -- the factory
(:func:`~repro.engine.simulation.make_simulation`) falls back to the
scalar engine for: churn schedules (mid-run membership rebuilds mutate
the edge structure) and policies outside the four push policies.
"""

from __future__ import annotations

import numpy as np

from repro.core.dissemination import DisseminationPolicy
from repro.core.dissemination.filtering import (
    FILTERED_POLICIES,
    ArraySourceTagger,
    forward_centralized_many,
    forward_distributed_many,
    forward_eq3_only_many,
    forward_flooding_many,
    quantise_tolerance,
)
from repro.core.metrics import ArrayCounters
from repro.engine.builder import SimulationSetup
from repro.engine.results import SimulationResult
from repro.engine.simulation import DisseminationSimulation
from repro.errors import ConfigurationError, SimulationError
from repro.sim.kernel import BatchKernel

__all__ = ["VectorizedSimulation"]

# Branch-free-ish policy dispatch for the hot loop.
_DISTRIBUTED, _EQ3_ONLY, _FLOODING, _CENTRALIZED = range(4)
_POLICY_KIND = {
    "distributed": _DISTRIBUTED,
    "eq3_only": _EQ3_ONLY,
    "flooding": _FLOODING,
    "centralized": _CENTRALIZED,
}


class VectorizedSimulation(DisseminationSimulation):
    """Array-backed engine, bit-identical to the scalar oracle."""

    def __init__(
        self,
        setup: SimulationSetup,
        policy: DisseminationPolicy | None = None,
        observer=None,
    ):
        super().__init__(setup, policy, observer=observer)
        if self._churn is not None:
            raise ConfigurationError(
                "VectorizedSimulation does not support churn schedules; "
                "use the scalar engine (kernel='scalar' or 'auto')"
            )
        name = getattr(self.policy, "name", None)
        if name not in FILTERED_POLICIES:
            raise ConfigurationError(
                f"VectorizedSimulation supports policies {list(FILTERED_POLICIES)}, "
                f"got {name!r}"
            )
        self._policy_kind = _POLICY_KIND[name]
        self._batch_kernel: BatchKernel | None = None
        self._build_arrays()

    # ------------------------------------------------------------------

    def _build_arrays(self) -> None:
        """Regroup the scalar preparation into struct-of-arrays form."""
        setup = self.setup
        network = setup.network
        centralized = self._policy_kind == _CENTRALIZED

        # One group per (node, item) that sends and/or receives; senders
        # first so the source groups get low ids, then pure receivers.
        gid_of: dict[tuple[int, int], int] = {}
        for key in self._children:
            gid_of[key] = len(gid_of)
        for key in self._receive_c:
            if key not in gid_of:
                gid_of[key] = len(gid_of)
        self._gid_of = gid_of

        n = len(gid_of)
        self._g_node: list[int] = [0] * n
        self._g_item: list[int] = [0] * n
        self._g_issrc: list[bool] = [False] * n
        self._g_prc: list[float] = [0.0] * n
        self._g_child_gid: list[np.ndarray] = [None] * n  # type: ignore[list-item]
        self._g_cs: list[np.ndarray] = [None] * n  # type: ignore[list-item]
        self._g_last: list[np.ndarray] = [None] * n  # type: ignore[list-item]
        self._g_delay: list[np.ndarray] = [None] * n  # type: ignore[list-item]
        self._g_log: list[list | None] = [None] * n
        self._g_ctol: list[np.ndarray | None] = [None] * n
        self._g_clast: list[np.ndarray | None] = [None] * n

        empty_i = np.empty(0, dtype=np.int64)
        empty_f = np.empty(0)
        for key, gid in gid_of.items():
            node, item_id = key
            initial = setup.traces[item_id].initial_value
            children = self._children.get(key)
            if children:
                try:
                    child_gids = np.array(
                        [gid_of[(child, item_id)] for child, _c in children],
                        dtype=np.int64,
                    )
                except KeyError as exc:
                    raise SimulationError(
                        f"child group missing for edge from node {node}, "
                        f"item {item_id}: {exc}"
                    ) from None
                cs = np.array(
                    [
                        quantise_tolerance(c) if centralized else c
                        for _child, c in children
                    ]
                )
                delays = np.array(
                    [network.delay_s(node, child) for child, _c in children]
                )
                last = np.full(len(children), initial)
            else:
                child_gids, cs, delays, last = empty_i, empty_f, empty_f, empty_f
            self._g_node[gid] = node
            self._g_item[gid] = item_id
            self._g_issrc[gid] = node == self._root_of[item_id]
            self._g_prc[gid] = (
                0.0 if self._g_issrc[gid] else self._receive_c[key]
            )
            self._g_child_gid[gid] = child_gids
            self._g_cs[gid] = cs
            self._g_delay[gid] = delays
            self._g_last[gid] = last
            self._g_log[gid] = self._deliveries.get(key)
            self._g_ctol[gid] = self._client_tols.get(key)
            self._g_clast[gid] = self._client_last.get(key)

        self._root_gid: dict[int, int] = {
            item_id: gid_of.get((self._root_of[item_id], item_id), -1)
            for item_id in setup.traces
        }
        n_nodes = max(self._stations) + 1 if self._stations else 1
        self._busy = np.zeros(n_nodes)
        self._acounters = ArrayCounters(n_nodes)

        if centralized:
            # Populated from the *scalar* policy's registered state, so
            # the oracle stays the single source of truth for which
            # tolerances exist in the network.
            self._tagger = ArraySourceTagger()
            for item_id, trace in setup.traces.items():
                self._tagger.add_item(
                    item_id,
                    self.policy.unique_tolerances(item_id),
                    trace.initial_value,
                )
            if self._failures is not None or self._adaptive is not None:
                # (item, quantised tolerance) -> number of edges serving
                # at it; lets reconfiguration diffs (failover or adaptive
                # rewires) replay the scalar policy's refcounted
                # SourceTagger remove/re-add transitions on the array
                # tagger without peeking at policy internals.
                self._tol_count: dict[tuple[int, float], int] = {}
                for (_node, item_id), children in self._children.items():
                    for _child, c in children:
                        key = (item_id, quantise_tolerance(c))
                        self._tol_count[key] = self._tol_count.get(key, 0) + 1

    # ------------------------------------------------------------------

    def _process_group(
        self, gid: int, t: float, value: float, tag, update_id: int = -1
    ) -> None:
        """Decide, queue and dispatch one update against one edge group.

        The vectorized mirror of the scalar ``_process_at_node`` child
        loop: one decision call over all dependents, one ``cumsum`` for
        the FIFO departures, one batched loss draw, then tuple pushes.
        Span emission is batched too -- one observer call per decision
        stage, never per child.
        """
        cs = self._g_cs[gid]
        n_children = cs.size
        if not n_children:
            return
        kind = self._policy_kind
        last = self._g_last[gid]
        if kind == _DISTRIBUTED:
            mask = forward_distributed_many(value, last, cs, self._g_prc[gid])
        elif kind == _EQ3_ONLY:
            mask = forward_eq3_only_many(value, last, cs)
        elif kind == _FLOODING:
            mask = forward_flooding_many(value, last)
        else:
            mask = forward_centralized_many(cs, tag)
        node = self._g_node[gid]
        is_source = self._g_issrc[gid]
        counters = self._acounters
        counters.record_checks(node, is_source, n_children)
        observer = self.observer
        if observer is not None:
            node_of = self._g_node
            observer.on_check_batch(
                update_id, self._g_item[gid], t, node,
                [node_of[g] for g in self._g_child_gid[gid].tolist()],
                mask.tolist(), is_source,
            )
        n_forward = int(np.count_nonzero(mask))
        if not n_forward:
            return
        if kind != _CENTRALIZED:
            last[mask] = value

        # FIFO station: the scalar engine chains busy_until additions one
        # submit at a time; cumsum with the start folded into the first
        # element reproduces that chain bit for bit.
        busy = self._busy
        backlog = busy[node]
        start = t if t > backlog else backlog
        departures = np.full(n_forward, self._comp_delay_s)
        departures[0] = start + self._comp_delay_s
        np.cumsum(departures, out=departures)
        busy[node] = departures[-1]
        counters.record_messages(node, is_source, n_forward)

        arrivals = departures + self._g_delay[gid][mask]
        targets = self._g_child_gid[gid][mask]
        if observer is not None:
            observer.on_forward_batch(
                update_id, self._g_item[gid], t, node,
                [node_of[g] for g in targets.tolist()],
                (arrivals - t).tolist(),
            )
        if self._down_links:
            # Partition filter before the loss draw: the Bernoulli
            # stream is only consumed for messages that actually enter
            # the network, exactly like the scalar child loop.
            down = self._down_links
            node_of = self._g_node
            kept_link = np.fromiter(
                ((node, node_of[target]) not in down for target in targets.tolist()),
                dtype=bool,
                count=targets.size,
            )
            n_link_dropped = targets.size - int(np.count_nonzero(kept_link))
            if n_link_dropped:
                counters.drops += n_link_dropped
                if observer is not None:
                    observer.on_drop_batch(
                        update_id, self._g_item[gid], t, node,
                        [node_of[g] for g in targets[~kept_link].tolist()],
                        "partition",
                    )
                arrivals = arrivals[kept_link]
                targets = targets[kept_link]
        if self._loss_rng is not None and targets.size:
            # Same stream, same order: one batched draw consumes the
            # generator exactly like the scalar per-message draws.
            kept = self._loss_rng.random(targets.size) >= self._loss_probability
            dropped = int(targets.size) - int(np.count_nonzero(kept))
            if dropped:
                counters.drops += dropped
                if observer is not None:
                    observer.on_drop_batch(
                        update_id, self._g_item[gid], t, node,
                        [self._g_node[g] for g in targets[~kept].tolist()],
                        "loss",
                    )
                arrivals = arrivals[kept]
                targets = targets[kept]
        push = self._batch_kernel.push
        for arrival, target in zip(arrivals.tolist(), targets.tolist()):
            push(arrival, target, value, tag, update_id, node)

    def run(self) -> SimulationResult:
        """Drain the merged source/delivery timeline, then score."""
        schedule = self._update_schedule()
        kernel = BatchKernel(schedule.times)
        self._batch_kernel = kernel
        source_times = schedule.times.tolist()
        source_items = schedule.item_ids.tolist()
        source_values = schedule.values.tolist()
        centralized = self._policy_kind == _CENTRALIZED
        root_gid = self._root_gid
        counters = self._acounters
        observer = self.observer
        track = self._failures is not None or self._adaptive is not None
        fail_events = list(self._failures.events) if self._failures is not None else []
        fi, nf = 0, len(fail_events)
        tick_times = (
            self._adaptive_controller.tick_times(schedule.span)
            if self._adaptive_controller is not None
            else []
        )
        ti, nt = 0, len(tick_times)
        for unit in kernel.drain():
            if fi < nf:
                # Same tie-break as the scalar event queue (failures are
                # scheduled before everything else at run() start): a
                # failure at t applies before the update or delivery at t.
                t_unit = source_times[unit] if type(unit) is int else unit[0]
                while fi < nf and fail_events[fi].time <= t_unit:
                    event = fail_events[fi]
                    self._apply_failure(event, float(event.time))
                    fi += 1
            if ti < nt:
                # Drift ticks share the failure tie-break: a tick at t
                # evaluates before the update or delivery at t, so both
                # kernels snapshot identical counter states.
                t_unit = source_times[unit] if type(unit) is int else unit[0]
                while ti < nt and tick_times[ti] <= t_unit:
                    self._on_adaptive_tick(tick_times[ti])
                    ti += 1
            if type(unit) is int:
                # A fresh source update; the static schedule index is
                # the update's stable trace id.
                item_id = source_items[unit]
                value = source_values[unit]
                if track:
                    # Keep the root's copy current for recovery resyncs
                    # (the scalar _on_source_update does this first).
                    self._source_value[item_id] = value
                if centralized:
                    decision = self._tagger.examine(item_id, value)
                    if decision.checks:
                        counters.record_checks(
                            self._root_of[item_id], True, decision.checks
                        )
                    if observer is not None:
                        observer.on_source(
                            unit, item_id, source_times[unit],
                            self._root_of[item_id],
                            decision.checks, decision.disseminate,
                        )
                    if not decision.disseminate:
                        continue
                    tag = decision.tag
                else:
                    # The push policies' at_source is a free pass-through
                    # (no checks, always disseminate) -- mirror the
                    # scalar engine's span for it.
                    if observer is not None:
                        observer.on_source(
                            unit, item_id, source_times[unit],
                            self._root_of[item_id], 0, True,
                        )
                    tag = None
                gid = root_gid[item_id]
                if gid >= 0:
                    self._process_group(gid, source_times[unit], value, tag, unit)
            else:
                # A delivery tuple: (time, seq, gid, value, tag,
                # update_id, sender node).
                t, _seq, gid, value, tag, update_id, src = unit
                if self._crashed and self._g_node[gid] in self._crashed:
                    # The sender paid for the message, but the repository
                    # crashed while it was in flight: a drop.
                    counters.drops += 1
                    if observer is not None:
                        observer.on_drop(
                            update_id, self._g_item[gid], t,
                            src, self._g_node[gid], "crash",
                        )
                    continue
                counters.deliveries += 1
                if observer is not None:
                    observer.on_deliver(
                        update_id, self._g_item[gid], t, self._g_node[gid]
                    )
                log = self._g_log[gid]
                if log is not None:
                    log.append((t, value))
                tols = self._g_ctol[gid]
                if tols is not None:
                    clast = self._g_clast[gid]
                    mask = forward_distributed_many(
                        value, clast, tols, self._g_prc[gid]
                    )
                    served = int(np.count_nonzero(mask))
                    if served:
                        clast[mask] = value
                    counters.client_checks += int(tols.size)
                    counters.client_messages += served
                self._process_group(gid, t, value, tag, update_id)
        while fi < nf:
            # Events past the last unit still close/open scoring
            # segments; the scalar kernel runs them too.
            event = fail_events[fi]
            self._apply_failure(event, float(event.time))
            fi += 1
        while ti < nt:
            # Ticks past the last unit still evaluate (and count); the
            # scalar kernel runs them too.
            self._on_adaptive_tick(tick_times[ti])
            ti += 1
        folded = counters.to_cost_counters()
        if track:
            # _apply_failure / _on_adaptive_tick charged reconfiguration
            # and resync cost into the scalar-side CostCounters; carry
            # it over before the array totals replace them.
            pre = self.counters
            folded.reconfigurations = pre.reconfigurations
            folded.edges_added = pre.edges_added
            folded.edges_removed = pre.edges_removed
            folded.resyncs = pre.resyncs
            folded.resync_checks = pre.resync_checks
            folded.resync_messages = pre.resync_messages
        self.counters = folded
        return self._score(schedule.span)

    def _message_counts(self) -> dict[int, int]:
        """Sparsify the dense per-node message tallies into the exact
        dict the scalar ``CostCounters.per_node_messages`` holds at the
        same event boundary (all-positive entries; order is irrelevant
        to the drift estimator)."""
        node_messages = self._acounters.node_messages
        return {
            int(node): int(node_messages[node])
            for node in np.nonzero(node_messages)[0]
        }

    # ------------------------------------------------------------------
    # Live rewiring (unplanned failover and adaptive re-optimization)
    # ------------------------------------------------------------------

    def _ensure_group(self, node: int, item_id: int) -> int:
        """The edge group for ``(node, item_id)``, created if absent.

        Adaptive rebuilds can wire pairs that never sent or received in
        the original graph (a relay acquiring a new item through
        augmentation); such groups start empty and inherit the scalar
        base's authoritative per-pair state (delivery log, receive
        coherency, client plane) by reference.
        """
        key = (node, item_id)
        gid = self._gid_of.get(key)
        if gid is not None:
            return gid
        gid = len(self._gid_of)
        self._gid_of[key] = gid
        issrc = node == self._root_of[item_id]
        self._g_node.append(node)
        self._g_item.append(item_id)
        self._g_issrc.append(issrc)
        self._g_prc.append(0.0 if issrc else self._receive_c.get(key, 0.0))
        self._g_child_gid.append(np.empty(0, dtype=np.int64))
        self._g_cs.append(np.empty(0))
        self._g_last.append(np.empty(0))
        self._g_delay.append(np.empty(0))
        self._g_log.append(self._deliveries.get(key))
        self._g_ctol.append(self._client_tols.get(key))
        self._g_clast.append(self._client_last.get(key))
        if issrc:
            self._root_gid[item_id] = gid
        return gid

    def _apply_diff(self, diff, now: float, resync: frozenset = frozenset()) -> None:
        """Mirror a live rewiring into the edge-group arrays.

        The scalar base keeps the children maps, receive coherencies,
        delivery logs and the registered scalar policy current; this
        override then patches the struct-of-arrays mirrors edge for
        edge, in the exact orders the base wires them (removals in
        sorted-tuple order, additions root-downward per item tree), and
        for the centralised policy replays the scalar ``SourceTagger``'s
        refcounted remove/re-add transitions on the array tagger.
        """
        super()._apply_diff(diff, now, resync=resync)
        centralized = self._policy_kind == _CENTRALIZED
        gid_of = self._gid_of
        for parent, child, item_id, c in sorted(diff.removed):
            gid = gid_of[(parent, item_id)]
            child_gid = gid_of[(child, item_id)]
            hits = np.nonzero(self._g_child_gid[gid] == child_gid)[0]
            if not hits.size:
                raise SimulationError(
                    f"edge group for node {parent} holds no dependent for "
                    f"node {child}, item {item_id}"
                )
            i = int(hits[0])
            self._g_child_gid[gid] = np.delete(self._g_child_gid[gid], i)
            self._g_cs[gid] = np.delete(self._g_cs[gid], i)
            self._g_last[gid] = np.delete(self._g_last[gid], i)
            self._g_delay[gid] = np.delete(self._g_delay[gid], i)
            if (child, item_id) not in self._receive_c:
                # The rebuild dropped the pair entirely (the scalar base
                # popped its receive coherency): in-flight deliveries
                # still append to the kept log, but nobody is served
                # from the pair any more -- mirror the scalar
                # _serve_clients early-return by unhooking the client
                # plane until a later rewire restores the subscription.
                self._g_ctol[child_gid] = None
                self._g_clast[child_gid] = None
            if centralized:
                tau = quantise_tolerance(c)
                key = (item_id, tau)
                count = self._tol_count[key] - 1
                if count:
                    self._tol_count[key] = count
                else:
                    # Last edge serving at this tolerance is gone: the
                    # scalar policy's unregister_edge dropped it from the
                    # SourceTagger too.
                    del self._tol_count[key]
                    self._tagger.remove_tolerance(item_id, tau)
        graph = self._graph
        network = self.setup.network
        added = sorted(
            diff.added, key=lambda e: (e[2], graph.item_depth(e[1], e[2]), e)
        )
        for parent, child, item_id, c in added:
            gid = self._ensure_group(parent, item_id)
            child_gid = self._ensure_group(child, item_id)
            # After the base class ran, the child's log tail IS the
            # initial the scalar policy was primed with (re-homed
            # children keep their copy; new subscriptions and resynced
            # ones just had the parent's current value appended).
            initial = self._deliveries[(child, item_id)][-1][1]
            tol = quantise_tolerance(c) if centralized else c
            self._g_child_gid[gid] = np.append(
                self._g_child_gid[gid], np.int64(child_gid)
            )
            self._g_cs[gid] = np.append(self._g_cs[gid], tol)
            self._g_last[gid] = np.append(self._g_last[gid], initial)
            self._g_delay[gid] = np.append(
                self._g_delay[gid], network.delay_s(parent, child)
            )
            # The base class (re)set the pair's receive coherency and may
            # have created its delivery log: refresh the group's scalars
            # so in-flight and future deliveries see current state.
            self._g_prc[child_gid] = self._receive_c[(child, item_id)]
            self._g_log[child_gid] = self._deliveries.get((child, item_id))
            self._g_ctol[child_gid] = self._client_tols.get((child, item_id))
            self._g_clast[child_gid] = self._client_last.get((child, item_id))
            if centralized:
                tkey = (item_id, tol)
                count = self._tol_count.get(tkey, 0)
                self._tol_count[tkey] = count + 1
                if count == 0:
                    self._tagger.add_tolerance(item_id, tol, initial)

    def _events_processed(self) -> int:
        if self._batch_kernel is None:
            return 0
        # The scalar kernel schedules each failure event and each drift
        # tick as one discrete event; the batch drain applies them
        # inline, so they are added back here to keep the result field
        # bit-identical.
        extra = len(self._failures.events) if self._failures is not None else 0
        if self._adaptive_controller is not None:
            extra += self._adaptive_controller.ticks
        return self._batch_kernel.events_processed + extra

"""Mid-run churn schedules: timed joins, departures and coherency changes.

Section 4 of the paper prescribes *reapplying* the dissemination
algorithm whenever a repository's data or coherency needs change;
:mod:`repro.core.dynamics` implements that reapplication offline.  This
module makes churn a first-class simulation input: a
:class:`ChurnSchedule` is an immutable, hashable sequence of
:class:`ChurnEvent` instants that the engine executes *mid-run* --
applying :class:`~repro.core.dynamics.DynamicMembership`, diffing the
dissemination graph, and rewiring only the changed service edges in the
live kernel.

Semantics:

- Every event names a repository from the config's repository pool
  (node ids ``1 .. n_repositories``).
- A repository whose *first* event is a ``join`` is a **late joiner**:
  it is excluded from the initial ``d3g`` and inserted at its scheduled
  time (with its generated interest profile, unless the event carries
  explicit requirements).
- ``depart`` removes a current member; the algorithm is reapplied and
  update messages still in flight toward the departed node are counted
  as drops.
- ``update`` replaces a member's requirements (the paper's "data or
  data coherency needs change") and reapplies the algorithm.

Because the schedule lives inside the frozen
:class:`~repro.engine.config.SimulationConfig`, a config still fully
determines its result -- the property the parallel sweep subsystem's
bit-identical merging rests on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.core.interests import InterestProfile
from repro.core.items import CoherencyMix
from repro.errors import ConfigurationError

__all__ = [
    "ChurnEvent",
    "ChurnSchedule",
    "synthetic_schedule",
    "schedule_for_config",
    "parse_churn_spec",
]

#: Recognised event kinds, in documentation order.
KINDS = ("join", "depart", "update")


def _freeze_requirements(requirements) -> tuple[tuple[int, float], ...]:
    """Normalise a requirements mapping into a sorted, hashable tuple."""
    if isinstance(requirements, dict):
        pairs = requirements.items()
    else:
        pairs = list(requirements)
    frozen = tuple(sorted((int(i), float(c)) for i, c in pairs))
    for item_id, c in frozen:
        if c <= 0:
            raise ConfigurationError(
                f"tolerance for item {item_id} must be positive, got {c!r}"
            )
    if len({i for i, _ in frozen}) != len(frozen):
        raise ConfigurationError("duplicate item in requirements")
    return frozen


@dataclass(frozen=True)
class ChurnEvent:
    """One timed membership change.

    Attributes:
        time: Simulated time (seconds) at which the change takes effect.
        kind: ``"join"``, ``"depart"`` or ``"update"``.
        repository: The repository the change concerns.
        requirements: For ``update`` (mandatory) and ``join`` (optional),
            the repository's new ``(item_id, tolerance)`` pairs; ``None``
            on a join means "use the generated interest profile".
    """

    time: float
    kind: str
    repository: int
    requirements: tuple[tuple[int, float], ...] | None = None

    def __post_init__(self) -> None:
        if self.time != self.time or self.time < 0:
            raise ConfigurationError(
                f"churn event time must be non-negative, got {self.time!r}"
            )
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"unknown churn event kind {self.kind!r}; choose from {KINDS}"
            )
        if self.kind == "update" and not self.requirements:
            raise ConfigurationError(
                "update events must carry the new requirements"
            )
        if self.kind == "depart" and self.requirements is not None:
            raise ConfigurationError("depart events carry no requirements")
        if self.requirements is not None:
            object.__setattr__(
                self, "requirements", _freeze_requirements(self.requirements)
            )

    def profile(self) -> InterestProfile | None:
        """The event's requirements as an :class:`InterestProfile`."""
        if self.requirements is None:
            return None
        return InterestProfile(
            repository=self.repository, requirements=dict(self.requirements)
        )

    @classmethod
    def join(cls, time: float, repository: int, requirements=None) -> "ChurnEvent":
        req = None if requirements is None else _freeze_requirements(requirements)
        return cls(time=time, kind="join", repository=repository, requirements=req)

    @classmethod
    def depart(cls, time: float, repository: int) -> "ChurnEvent":
        return cls(time=time, kind="depart", repository=repository)

    @classmethod
    def update(cls, time: float, repository: int, requirements) -> "ChurnEvent":
        return cls(
            time=time,
            kind="update",
            repository=repository,
            requirements=_freeze_requirements(requirements),
        )


@dataclass(frozen=True)
class ChurnSchedule:
    """An immutable sequence of churn events, sorted by time.

    Ties keep construction order (and the engine schedules churn before
    same-instant trace updates), so execution order is deterministic.
    """

    events: tuple[ChurnEvent, ...] = ()

    def __post_init__(self) -> None:
        events = tuple(self.events)
        for event in events:
            if not isinstance(event, ChurnEvent):
                raise ConfigurationError(
                    f"schedule entries must be ChurnEvent, got {type(event).__name__}"
                )
        object.__setattr__(
            self, "events", tuple(sorted(events, key=lambda e: e.time))
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ChurnEvent]:
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def count(self, kind: str) -> int:
        """Number of events of one kind."""
        if kind not in KINDS:
            raise ConfigurationError(f"unknown churn event kind {kind!r}")
        return sum(1 for e in self.events if e.kind == kind)

    def late_joiners(self) -> frozenset:
        """Repositories whose first event is a join (not initial members)."""
        first_kind: dict[int, str] = {}
        for event in self.events:
            first_kind.setdefault(event.repository, event.kind)
        return frozenset(r for r, k in first_kind.items() if k == "join")

    def validate_items(self, n_items: int) -> None:
        """Check every event's requirements against the item universe.

        Raises:
            ConfigurationError: when an event references an item id
                outside ``0 .. n_items - 1``.
        """
        for event in self.events:
            for item_id, _c in event.requirements or ():
                if not 0 <= item_id < n_items:
                    raise ConfigurationError(
                        f"t={event.time}: {event.kind} event for repository "
                        f"{event.repository} references unknown item {item_id} "
                        f"(universe has {n_items} items)"
                    )

    def initial_members(self, repositories: Iterable[int]) -> list[int]:
        """Validate against a repository pool; return the initial members.

        Simulates the membership transitions: joins must not target
        current members, departures and updates must target members, and
        every event's repository must exist in the pool.

        Raises:
            ConfigurationError: on any inconsistency.
        """
        pool = sorted({int(r) for r in repositories})
        pool_set = set(pool)
        unknown = sorted({e.repository for e in self.events} - pool_set)
        if unknown:
            raise ConfigurationError(
                f"churn events reference unknown repositories {unknown}"
            )
        members = pool_set - self.late_joiners()
        for event in self.events:
            if event.kind == "join":
                if event.repository in members:
                    raise ConfigurationError(
                        f"t={event.time}: repository {event.repository} "
                        "cannot join; it is already a member"
                    )
                members.add(event.repository)
            else:
                if event.repository not in members:
                    raise ConfigurationError(
                        f"t={event.time}: repository {event.repository} "
                        f"cannot {event.kind}; it is not a member"
                    )
                if event.kind == "depart":
                    members.remove(event.repository)
        return [r for r in pool if r not in self.late_joiners()]


def synthetic_schedule(
    *,
    repositories: Iterable[int],
    n_items: int,
    span_s: float,
    joins: int = 0,
    departs: int = 0,
    updates: int = 0,
    t_percent: float = 80.0,
    subscription_probability: float = 0.5,
    seed: int = 0,
    window: tuple[float, float] = (0.05, 0.85),
) -> ChurnSchedule:
    """Generate a consistent random churn schedule with a seeded RNG.

    Events are placed uniformly inside ``window`` (as fractions of
    ``span_s``, leaving the tail churn-free so post-reconfiguration
    behaviour is observable), late joiners are sampled from the pool,
    and depart/update targets are drawn only from repositories that are
    members at the event's time -- the schedule is valid by construction.

    Args:
        repositories: The repository node-id pool.
        n_items: Size of the data-item universe (ids ``0..n_items-1``).
        span_s: Observation-window length in seconds.
        joins / departs / updates: Event counts per kind.
        t_percent: Stringent share for redrawn tolerances (update events).
        subscription_probability: P(item wanted) for redrawn profiles.
        seed: Seed for the schedule's own RNG.
        window: ``(lo, hi)`` fractions of ``span_s`` holding the events.

    Raises:
        ConfigurationError: on impossible counts (more joins than
            repositories, departures that would empty the network, ...).
    """
    if min(joins, departs, updates) < 0:
        raise ConfigurationError("churn event counts must be non-negative")
    if n_items < 1:
        raise ConfigurationError("n_items must be >= 1")
    if span_s <= 0:
        raise ConfigurationError(f"span_s must be positive, got {span_s!r}")
    repos = sorted({int(r) for r in repositories})
    if not repos:
        raise ConfigurationError("need at least one repository to churn")
    if joins > len(repos):
        raise ConfigurationError(
            f"cannot schedule {joins} joins over {len(repos)} repositories"
        )
    total = joins + departs + updates
    if total == 0:
        return ChurnSchedule()

    rng = np.random.default_rng(seed)
    lo, hi = window
    if not 0.0 <= lo < hi <= 1.0:
        raise ConfigurationError(f"window must satisfy 0 <= lo < hi <= 1, got {window!r}")
    times = np.sort(rng.uniform(lo * span_s, hi * span_s, size=total))
    kinds = ["join"] * joins + ["depart"] * departs + ["update"] * updates
    rng.shuffle(kinds)

    late = [repos[i] for i in rng.choice(len(repos), size=joins, replace=False)]
    live = sorted(set(repos) - set(late))
    mix = CoherencyMix(t_percent=t_percent)
    join_queue = list(late)
    events: list[ChurnEvent] = []
    for t, kind in zip(times, kinds):
        t = float(t)
        if kind == "join":
            repo = join_queue.pop(0)
            events.append(ChurnEvent.join(t, repo))
            live.append(repo)
            live.sort()
        elif kind == "depart":
            if len(live) < 2:
                raise ConfigurationError(
                    "cannot schedule a departure that would empty the network; "
                    "reduce departs or add repositories"
                )
            repo = live[int(rng.integers(len(live)))]
            live.remove(repo)
            events.append(ChurnEvent.depart(t, repo))
        else:
            if not live:
                raise ConfigurationError(
                    "cannot schedule a coherency change with no live members"
                )
            repo = live[int(rng.integers(len(live)))]
            wanted = [i for i in range(n_items) if rng.random() < subscription_probability]
            if not wanted:
                wanted = [int(rng.integers(n_items))]
            tolerances = mix.draw(len(wanted), rng)
            events.append(
                ChurnEvent.update(t, repo, zip(wanted, (float(c) for c in tolerances)))
            )
    return ChurnSchedule(tuple(events))


def schedule_for_config(
    config,
    *,
    joins: int = 0,
    departs: int = 0,
    updates: int = 0,
    seed: int | None = None,
) -> ChurnSchedule:
    """Synthesise a schedule matched to a :class:`SimulationConfig`.

    Repository ids, item universe, trace span and the tolerance mix all
    come from the config (repositories occupy node ids
    ``1 .. n_repositories`` by the topology contract), so the same
    config always yields the same schedule.

    Args:
        config: The run's :class:`~repro.engine.config.SimulationConfig`
            (duck-typed; only scalar fields are read).
        joins / departs / updates: Event counts per kind.
        seed: Schedule RNG seed; defaults to ``config.seed``.
    """
    return synthetic_schedule(
        repositories=range(1, config.n_repositories + 1),
        n_items=config.n_items,
        span_s=float(max(config.trace_samples - 1, 1)),
        joins=joins,
        departs=departs,
        updates=updates,
        t_percent=config.t_percent,
        subscription_probability=config.subscription_probability,
        seed=config.seed if seed is None else seed,
    )


def parse_churn_spec(text: str) -> tuple[int, int, int]:
    """Parse the CLI's ``--churn J,D,U`` counts.

    Raises:
        ConfigurationError: on malformed specs or negative counts.
    """
    parts = [p.strip() for p in text.split(",")]
    if len(parts) != 3:
        raise ConfigurationError(
            f"churn spec must be 'JOINS,DEPARTS,UPDATES', got {text!r}"
        )
    try:
        joins, departs, updates = (int(p) for p in parts)
    except ValueError:
        raise ConfigurationError(
            f"churn spec must hold three integers, got {text!r}"
        ) from None
    if min(joins, departs, updates) < 0:
        raise ConfigurationError(f"churn counts must be non-negative, got {text!r}")
    return joins, departs, updates

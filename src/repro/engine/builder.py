"""Builds a ready-to-run simulation from a config.

Assembly order (each step seeded by its own named random stream, so a
parameter sweep perturbs only what it sweeps):

1. physical network (topology + Floyd-Warshall routing),
2. synthetic traces (one per item, Table 1-calibrated),
3. interest profiles (50% subscription, T% stringent mix),
4. degree of cooperation (the offered value, optionally clamped by
   Eq. 2's controlled cooperation), and
5. the ``d3g`` via LeLA.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cooperation import coop_degree
from repro.core.dynamics import DynamicMembership
from repro.core.interests import InterestProfile, generate_interests
from repro.core.items import CoherencyMix, DataItem
from repro.core.lela import build_d3g
from repro.core.preference import get_preference_function
from repro.core.tree import DisseminationGraph
from repro.engine.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.network.delays import ParetoDelayModel
from repro.network.model import NetworkModel, build_network
from repro.sim.rng import RandomStreams
from repro.traces.library import make_trace_set
from repro.traces.model import Trace

__all__ = ["SimulationSetup", "build_setup", "make_membership"]


@dataclass
class SimulationSetup:
    """Everything :class:`~repro.engine.simulation.DisseminationSimulation`
    needs, plus the derived quantities experiments report."""

    config: SimulationConfig
    network: NetworkModel
    items: list[DataItem]
    traces: dict[int, Trace]
    profiles: dict[int, InterestProfile]
    graph: DisseminationGraph
    effective_degree: int
    avg_comm_delay_ms: float

    @property
    def source(self) -> int:
        return self.network.source

    @property
    def repositories(self) -> list[int]:
        return [int(r) for r in self.network.repository_ids]


def _build_network(config: SimulationConfig, streams: RandomStreams) -> NetworkModel:
    if config.link_delay_mean_ms <= 0:
        # Idealised zero-delay network: build with nominal delays for a
        # realistic topology, then collapse them.
        delay_model = ParetoDelayModel()
        network = build_network(
            config.n_repositories,
            config.n_routers,
            streams.stream("topology"),
            delay_model=delay_model,
            avg_degree=config.avg_degree,
        )
        return network.scaled_delays(0.0)
    delay_model = ParetoDelayModel(
        mean_ms=config.link_delay_mean_ms,
        min_ms=min(config.link_delay_min_ms, config.link_delay_mean_ms / 2.0),
    )
    return build_network(
        config.n_repositories,
        config.n_routers,
        streams.stream("topology"),
        delay_model=delay_model,
        avg_degree=config.avg_degree,
    )


def _initial_membership(
    config: SimulationConfig,
    network: NetworkModel,
    profiles: dict[int, InterestProfile],
    effective_degree: int,
) -> DynamicMembership:
    """A fresh membership with the schedule's initial members joined."""
    membership = DynamicMembership(
        source=network.source,
        comm_delay_ms=network.delay_ms,
        offered_degree=effective_degree,
        preference=get_preference_function(config.preference),
        p_percent=config.p_percent,
        seed=config.seed,
    )
    config.churn.validate_items(config.n_items)
    initial = config.churn.initial_members(profiles)
    # The replay is known-good (the same joins either already validated
    # in build_setup or will, below): validate once, not per insert.
    for repo in initial:
        membership.join(profiles[repo], validate=False)
    membership.validate()
    return membership


def make_membership(setup: "SimulationSetup") -> DynamicMembership:
    """Rebuild the initial :class:`DynamicMembership` for a churn run.

    The simulation constructs its *own* membership (rather than reusing
    one stored on the setup) because churn mutates the membership's
    graph mid-run: a shared, recycled setup must stay read-only so that
    sweep recycling and session-scoped fixtures remain sound.  The
    replay is deterministic, so the rebuilt membership's graph is
    bit-identical to ``setup.graph`` -- and with validation batched it
    costs well under 1% of one simulation run, so isolation is cheap.

    Raises:
        ConfigurationError: when the setup's config carries no churn
            schedule.
    """
    if setup.config.churn is None:
        raise ConfigurationError("make_membership needs a config with churn set")
    return _initial_membership(
        setup.config, setup.network, setup.profiles, setup.effective_degree
    )


_NETWORK_FIELDS = (
    "seed",
    "n_repositories",
    "n_routers",
    "avg_degree",
    "link_delay_mean_ms",
    "link_delay_min_ms",
    "comm_target_ms",
)
_TRACE_FIELDS = ("seed", "n_items", "trace_samples")
_INTEREST_FIELDS = (
    "seed",
    "n_items",
    "n_repositories",
    "t_percent",
    "subscription_probability",
)


def _fields_match(a: SimulationConfig, b: SimulationConfig, fields) -> bool:
    return all(getattr(a, f) == getattr(b, f) for f in fields)


def build_setup(
    config: SimulationConfig, base: SimulationSetup | None = None
) -> SimulationSetup:
    """Assemble network, traces, interests and the ``d3g`` for a config.

    Args:
        config: The run's parameterisation.
        base: An earlier setup to recycle expensive pieces from.  Sweeps
            that only vary, say, the offered degree reuse the network,
            traces and interest profiles unchanged (the builder checks
            which config fields actually affect each piece).
    """
    streams = RandomStreams(config.seed)

    if base is not None and _fields_match(config, base.config, _NETWORK_FIELDS):
        network = base.network
    elif (
        base is not None
        and _fields_match(config, base.config, _NETWORK_FIELDS[:-1])
        and config.comm_target_ms is not None
        and base.network.mean_repo_delay_ms() > 0.0
    ):
        # Same topology, different delay target: rescale instead of
        # regenerating (uniform scaling preserves shortest paths).
        network = base.network.with_repo_mean_delay(config.comm_target_ms)
    else:
        network = _build_network(config, streams)
        if config.comm_target_ms is not None:
            network = network.with_repo_mean_delay(config.comm_target_ms)

    items = [DataItem(item_id=i, name=f"ITEM{i:03d}") for i in range(config.n_items)]
    if base is not None and _fields_match(config, base.config, _TRACE_FIELDS):
        traces = base.traces
    else:
        traces = {
            item.item_id: trace
            for item, trace in zip(
                items,
                make_trace_set(
                    config.n_items,
                    rng_factory=lambda i: streams.spawn("traces", i),
                    n_samples=config.trace_samples,
                ),
            )
        }

    if base is not None and _fields_match(config, base.config, _INTEREST_FIELDS):
        profiles = base.profiles
    else:
        mix = CoherencyMix(t_percent=config.t_percent)
        profiles = generate_interests(
            repositories=[int(r) for r in network.repository_ids],
            items=items,
            mix=mix,
            rng=streams.stream("interests"),
            subscription_probability=config.subscription_probability,
        )

    avg_comm = network.mean_repo_delay_ms()
    if config.controlled_cooperation:
        effective = min(
            config.offered_degree,
            coop_degree(
                avg_comm_delay_ms=avg_comm,
                avg_comp_delay_ms=config.comp_delay_ms,
                f=config.interest_fraction_f,
                c_resources=config.offered_degree,
            ),
        )
    else:
        effective = config.offered_degree

    if config.churn is not None:
        # Churn runs build the initial graph through DynamicMembership so
        # that mid-run departures/coherency changes can rebuild in the
        # same join order with the same seeding; the schedule is also
        # validated against the repository pool here, before any
        # simulation work happens.
        graph = _initial_membership(config, network, profiles, effective).graph
    else:
        graph = build_d3g(
            profiles=[profiles[r] for r in sorted(profiles)],
            source=network.source,
            comm_delay_ms=network.delay_ms,
            offered_degree=effective,
            preference=get_preference_function(config.preference),
            p_percent=config.p_percent,
            rng=streams.stream("lela"),
        )

    return SimulationSetup(
        config=config,
        network=network,
        items=items,
        traces=traces,
        profiles=profiles,
        graph=graph,
        effective_degree=effective,
        avg_comm_delay_ms=avg_comm,
    )

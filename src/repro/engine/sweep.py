"""Parallel sweep execution with deterministic result merging.

Every experiment in the reproduction is a parameter sweep: a sequence of
:class:`~repro.engine.config.SimulationConfig` points whose results
become one curve of one figure.  The seed ran every point serially in
one process; this module fans the points out over a
:class:`concurrent.futures.ProcessPoolExecutor` while keeping the output
*bit-identical* to the serial path, whatever the worker count or
completion order.

The determinism guarantee rests on two facts:

- A config fully determines its result.  Every random stream is named
  and derived from ``config.seed``, and setup recycling (``base=`` in
  :func:`~repro.engine.builder.build_setup`) only reuses pieces whose
  governing fields match -- plus the network-rescale path always scales
  from the raw delay arrays (see
  :meth:`~repro.network.model.NetworkModel._uniformly_scaled`), so a
  recycled setup is bit-for-bit the setup a fresh build would produce.
  Worker-local recycling is therefore pure optimisation, never
  observable in the results.
- Merging is keyed by the config, not by completion order.  Each worker
  returns ``(position, result)`` pairs; the merge places results by the
  position of the *distinct* config in the submission order and then
  re-expands duplicates, so shuffling workers, chunks or finish times
  cannot reorder or alter the output.

Workers run contiguous chunks of the distinct-config list and chain
``base=`` recycling through a per-process cache (``_WORKER_BASE``), so
the expensive pieces -- topology generation, Floyd-Warshall routing,
trace synthesis -- are rebuilt only when a chunk actually crosses a
boundary in the governing fields, exactly as in a serial sweep.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Sequence

from repro.engine.builder import SimulationSetup, build_setup
from repro.engine.config import SimulationConfig
from repro.engine.results import SimulationResult
from repro.engine.simulation import make_simulation
from repro.errors import ConfigurationError

__all__ = ["resolve_jobs", "run_sweep"]

#: Per-worker-process setup cache: the last setup built in this process,
#: recycled into the next point's ``build_setup(..., base=...)``.  Lives
#: at module scope so it survives across chunks handed to the same
#: worker.  Never leaves the worker, so it cannot leak between jobs
#: counts or affect merged output.
_WORKER_BASE: SimulationSetup | None = None


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value to a concrete worker count.

    ``None`` or ``0`` mean "one worker per available CPU"; anything
    else is used as given.

    Raises:
        ConfigurationError: on a negative worker count.
    """
    if jobs is None or jobs == 0:
        try:
            return len(os.sched_getaffinity(0))
        except AttributeError:  # platforms without CPU affinity
            return os.cpu_count() or 1
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    return jobs


def _run_point(config: SimulationConfig) -> SimulationResult:
    """Run one sweep point, recycling setup pieces from the previous one."""
    global _WORKER_BASE
    setup = build_setup(config, base=_WORKER_BASE)
    _WORKER_BASE = setup
    return make_simulation(setup).run()


def _run_chunk(
    chunk: Sequence[tuple[int, SimulationConfig]]
) -> list[tuple[int, SimulationResult]]:
    """Worker entry point: run ``(position, config)`` pairs in order."""
    return [(position, _run_point(config)) for position, config in chunk]


def _contiguous_chunks(
    items: Sequence[tuple[int, SimulationConfig]], n_chunks: int
) -> list[list[tuple[int, SimulationConfig]]]:
    """Split into at most ``n_chunks`` contiguous, near-equal chunks.

    Contiguity matters: neighbouring sweep points usually differ in one
    field, so a worker's ``base=`` recycling keeps paying off inside its
    chunk just as it does along a serial sweep.
    """
    n = len(items)
    n_chunks = max(1, min(n_chunks, n))
    size, extra = divmod(n, n_chunks)
    chunks: list[list[tuple[int, SimulationConfig]]] = []
    start = 0
    for i in range(n_chunks):
        end = start + size + (1 if i < extra else 0)
        chunks.append(list(items[start:end]))
        start = end
    return chunks


def run_sweep(
    configs: Iterable[SimulationConfig], jobs: int | None = 1
) -> list[SimulationResult]:
    """Run every config and return results aligned to the input order.

    Args:
        configs: The sweep points, in the order the caller wants the
            results back.
        jobs: Worker processes to fan out over.  ``1`` runs everything
            serially in-process (no executor, no pickling); ``None`` or
            ``0`` use one worker per available CPU.

    Returns:
        One :class:`SimulationResult` per input config, in input order.
        Identical configs appearing more than once are simulated once
        and share one result object.
    """
    ordered = list(configs)
    n_jobs = resolve_jobs(jobs)

    # Deduplicate while preserving first-appearance order; the merge is
    # keyed by the config itself (frozen dataclass => hashable).
    distinct: list[SimulationConfig] = []
    position_of: dict[SimulationConfig, int] = {}
    for config in ordered:
        if config not in position_of:
            position_of[config] = len(distinct)
            distinct.append(config)

    merged: list[SimulationResult | None] = [None] * len(distinct)
    if n_jobs <= 1 or len(distinct) <= 1:
        base: SimulationSetup | None = None
        for position, config in enumerate(distinct):
            setup = build_setup(config, base=base)
            base = setup
            merged[position] = make_simulation(setup).run()
    else:
        chunks = _contiguous_chunks(list(enumerate(distinct)), n_jobs)
        with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
            for pairs in pool.map(_run_chunk, chunks):
                for position, result in pairs:
                    merged[position] = result

    return [merged[position_of[config]] for config in ordered]

"""Adaptive push-pull hybrid (Section 8's outlook, after Bhide et al.).

The paper's conclusions name *"adaptive combinations of push and pull"*
as an alternative dissemination mechanism for the repository overlay.
This module implements the canonical split: subscriptions with
*stringent* tolerances ride the cooperative push d3g (they need
immediacy and the d3g amortises the source's work), while *lax*
subscriptions poll with an adaptive TTR (they tolerate staleness, and
polling keeps no per-dependent state at the parents).

Modelling note: the push and pull planes are simulated independently,
so the source's computational queue is not shared between them.  This
under-counts source contention relative to a fully merged simulation;
the hybrid's numbers are therefore a (slightly optimistic) bound, which
is sufficient for the qualitative comparison the experiment draws.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fidelity import FidelityAccumulator
from repro.core.interests import InterestProfile
from repro.core.lela import build_d3g
from repro.core.preference import get_preference_function
from repro.engine.builder import SimulationSetup, build_setup
from repro.engine.config import SimulationConfig
from repro.engine.pull import PullSimulation, TtrConfig
from repro.engine.simulation import DisseminationSimulation
from repro.errors import ConfigurationError
from repro.sim.rng import RandomStreams

__all__ = ["HybridResult", "split_profiles", "run_hybrid_simulation"]


@dataclass
class HybridResult:
    """Merged outcome of the two dissemination planes."""

    loss_of_fidelity: float
    per_repository_loss: dict[int, float]
    push_messages: int
    pull_messages: int
    push_pairs: int
    pull_pairs: int
    threshold_c: float

    @property
    def messages(self) -> int:
        """Total traffic across both planes."""
        return self.push_messages + self.pull_messages


def split_profiles(
    profiles: dict[int, InterestProfile], threshold_c: float
) -> tuple[dict[int, InterestProfile], dict[int, InterestProfile]]:
    """Split every profile into (push part, pull part) by tolerance.

    Subscriptions with ``c <= threshold_c`` go to the push plane; the
    rest pull.  Repositories with an empty part are omitted from that
    plane.
    """
    if threshold_c <= 0:
        raise ConfigurationError(f"threshold_c must be positive, got {threshold_c!r}")
    push: dict[int, InterestProfile] = {}
    pull: dict[int, InterestProfile] = {}
    for repo, profile in profiles.items():
        tight = {x: c for x, c in profile.requirements.items() if c <= threshold_c}
        loose = {x: c for x, c in profile.requirements.items() if c > threshold_c}
        if tight:
            push[repo] = InterestProfile(repository=repo, requirements=tight)
        if loose:
            pull[repo] = InterestProfile(repository=repo, requirements=loose)
    return push, pull


def run_hybrid_simulation(
    config: SimulationConfig,
    threshold_c: float = 0.1,
    ttr: TtrConfig | None = None,
    base: SimulationSetup | None = None,
) -> HybridResult:
    """Run the push plane and pull plane and merge their fidelity.

    Args:
        config: Full workload parameterisation (profiles are generated
            from it exactly as for a pure-push run, then split).
        threshold_c: Tolerance boundary between push and pull
            (default $0.1 -- exactly the paper's stringent/lax boundary).
        ttr: Pull-plane TTR policy; defaults to an adaptive 1-60 s TTR.
        base: Optional setup to recycle network/traces from.
    """
    if ttr is None:
        ttr = TtrConfig(mode="adaptive", ttr_s=10.0, ttr_min_s=1.0, ttr_max_s=60.0)
    if config.churn is not None:
        raise ConfigurationError(
            "the push/pull hybrid does not support mid-run churn; "
            "drop the churn schedule or use the pure-push engine"
        )
    full_setup = build_setup(config, base=base)
    push_profiles, pull_profiles = split_profiles(full_setup.profiles, threshold_c)

    per_pair: dict[tuple[int, int], float] = {}
    push_messages = 0
    pull_messages = 0

    if push_profiles:
        graph = build_d3g(
            profiles=[push_profiles[r] for r in sorted(push_profiles)],
            source=full_setup.source,
            comm_delay_ms=full_setup.network.delay_ms,
            offered_degree=full_setup.effective_degree,
            preference=get_preference_function(config.preference),
            p_percent=config.p_percent,
            rng=RandomStreams(config.seed).stream("hybrid-lela"),
        )
        push_setup = SimulationSetup(
            config=config,
            network=full_setup.network,
            items=full_setup.items,
            traces=full_setup.traces,
            profiles=push_profiles,
            graph=graph,
            effective_degree=full_setup.effective_degree,
            avg_comm_delay_ms=full_setup.avg_comm_delay_ms,
        )
        push_result = DisseminationSimulation(push_setup).run()
        per_pair.update(push_result.extras["per_pair_loss"])
        push_messages = push_result.messages

    if pull_profiles:
        pull_setup = SimulationSetup(
            config=config,
            network=full_setup.network,
            items=full_setup.items,
            traces=full_setup.traces,
            profiles=pull_profiles,
            graph=full_setup.graph,  # stats only; pull uses no tree
            effective_degree=0,
            avg_comm_delay_ms=full_setup.avg_comm_delay_ms,
        )
        pull_result = PullSimulation(pull_setup, ttr).run()
        per_pair.update(pull_result.extras["per_pair_loss"])
        pull_messages = pull_result.messages

    accumulator = FidelityAccumulator()
    for (repo, item_id), loss in per_pair.items():
        accumulator.add(repo, item_id, loss)
    return HybridResult(
        loss_of_fidelity=accumulator.system_loss(),
        per_repository_loss=accumulator.per_repository(),
        push_messages=push_messages,
        pull_messages=pull_messages,
        push_pairs=sum(len(p) for p in push_profiles.values()),
        pull_pairs=sum(len(p) for p in pull_profiles.values()),
        threshold_c=threshold_c,
    )

"""Multiple sources (Section 4's deferred extension).

The paper assumes one source per inserted repository for exposition and
notes that *"the extension to deal with multiple sources is fairly
straightforward"*.  This module implements it:

- Each data item is **owned by exactly one source**; sources are
  distinct physical nodes (the base source plus re-purposed router
  nodes, so the delay matrix already covers them).
- LeLA runs once per source over that source's items, with repository
  push-connection budgets **shared across all trees**: a repository
  serving three dependents for source A's items has three fewer
  connections to offer source B (built sequentially, the paper's
  one-at-a-time spirit).
- The event-driven simulation is shared: one kernel, one FIFO station
  per node, so a repository relaying items of several sources queues
  all of that work in one place (unlike the push/pull hybrid, nothing
  is approximated here).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.dissemination import DisseminationPolicy
from repro.core.interests import InterestProfile
from repro.core.lela import LelaBuilder
from repro.core.preference import get_preference_function
from repro.core.tree import DisseminationGraph
from repro.engine.builder import SimulationSetup, build_setup
from repro.engine.config import SimulationConfig
from repro.engine.simulation import DisseminationSimulation
from repro.errors import ConfigurationError, TreeConstructionError
from repro.sim.rng import RandomStreams

__all__ = ["MultiSourceSetup", "build_multisource_setup", "MultiSourceSimulation", "run_multisource_simulation"]


@dataclass
class MultiSourceSetup:
    """A single-source setup plus the per-source trees and item map."""

    base: SimulationSetup
    sources: list[int]
    item_owner: dict[int, int]
    graphs: dict[int, DisseminationGraph] = field(default_factory=dict)

    @property
    def config(self) -> SimulationConfig:
        return self.base.config

    def items_of(self, source: int) -> list[int]:
        """Item ids owned by one source, ascending."""
        return sorted(i for i, s in self.item_owner.items() if s == source)


def _restricted(profile: InterestProfile, item_ids: set[int]) -> InterestProfile | None:
    reqs = {x: c for x, c in profile.requirements.items() if x in item_ids}
    if not reqs:
        return None
    return InterestProfile(repository=profile.repository, requirements=reqs)


def build_multisource_setup(
    config: SimulationConfig, n_sources: int
) -> MultiSourceSetup:
    """Partition items round-robin over ``n_sources`` and build all trees.

    Source 0 is the topology's source node; additional sources take over
    the highest-id router nodes (physically present, previously passive).

    Raises:
        ConfigurationError: if the topology has too few routers to host
            the extra sources.
    """
    if n_sources < 1:
        raise ConfigurationError(f"n_sources must be >= 1, got {n_sources!r}")
    if config.churn is not None:
        raise ConfigurationError(
            "the multi-source extension does not support mid-run churn; "
            "drop the churn schedule or use the single-source engine"
        )
    base = build_setup(config)
    router_ids = list(base.network.topology.router_ids)
    if n_sources - 1 > len(router_ids):
        raise ConfigurationError(
            f"{n_sources} sources need {n_sources - 1} routers to host them; "
            f"topology has {len(router_ids)}"
        )
    sources = [base.source] + [int(r) for r in router_ids[-(n_sources - 1):]] if n_sources > 1 else [base.source]

    item_owner = {
        item.item_id: sources[i % n_sources] for i, item in enumerate(base.items)
    }

    # Shared capacity: budgets deplete as each source's tree is built.
    remaining = {r: base.effective_degree for r in base.repositories}
    streams = RandomStreams(config.seed)
    graphs: dict[int, DisseminationGraph] = {}
    for source in sources:
        owned = set(
            item_id for item_id, owner in item_owner.items() if owner == source
        )
        budgets = dict(remaining)
        budgets[source] = base.effective_degree
        builder = LelaBuilder(
            source=source,
            comm_delay_ms=base.network.delay_ms,
            offered_degree=budgets,
            preference=get_preference_function(config.preference),
            p_percent=config.p_percent,
            rng=streams.stream(f"lela-src{source}"),
        )
        for repo in sorted(base.profiles):
            restricted = _restricted(base.profiles[repo], owned)
            if restricted is not None:
                builder.insert(restricted)
        graph = builder.graph
        graph.validate(max_dependents=budgets)
        graphs[source] = graph
        for repo in base.repositories:
            if repo in graph.nodes:
                used = graph.nodes[repo].n_dependents
                remaining[repo] = max(0, remaining[repo] - used)

    return MultiSourceSetup(
        base=base, sources=sources, item_owner=item_owner, graphs=graphs
    )


class MultiSourceSimulation(DisseminationSimulation):
    """The shared-kernel simulation over several per-source trees."""

    def __init__(
        self, multi: MultiSourceSetup, policy: DisseminationPolicy | None = None
    ) -> None:
        self._multi = multi
        super().__init__(multi.base, policy)

    def _graphs(self):
        triples = []
        for source in self._multi.sources:
            items = self._multi.items_of(source)
            if items:
                triples.append((self._multi.graphs[source], source, items))
        return triples

    def _score(self, span: float):
        result = super()._score(span)
        result.extras["sources"] = list(self._multi.sources)
        result.extras["item_owner"] = dict(self._multi.item_owner)
        return result


def run_multisource_simulation(
    config: SimulationConfig,
    n_sources: int,
    setup: MultiSourceSetup | None = None,
):
    """Build (or reuse) a multi-source setup and run it end to end.

    Raises:
        TreeConstructionError: if shared budgets leave some source's
            repositories unplaceable (raise ``offered_degree``).
    """
    if setup is None:
        setup = build_multisource_setup(config, n_sources)
    if setup.config != config:
        raise TreeConstructionError("setup was built for a different config")
    return MultiSourceSimulation(setup).run()

"""Result containers and aggregation for simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.metrics import CostCounters
from repro.core.tree import TreeStats

__all__ = ["SimulationResult"]


@dataclass
class SimulationResult:
    """Everything one run produced.

    Attributes:
        loss_of_fidelity: The headline metric -- system-wide mean loss
            of fidelity, percent (0 is perfect).
        per_repository_loss: Mean loss per repository.
        counters: Message/check accounting (Figure 11 metrics).
        tree_stats: Shape of the ``d3g`` used for the run.
        effective_degree: Degree of cooperation actually enforced
            (after Eq. 2 clamping, when controlled cooperation is on).
        avg_comm_delay_ms: Measured average node-to-node delay input to
            Eq. (2).
        events_processed: Discrete events executed by the kernel.
        sim_span_s: Observation-window length (trace span).
        extras: Free-form per-experiment additions.
    """

    loss_of_fidelity: float
    per_repository_loss: dict[int, float]
    counters: CostCounters
    tree_stats: TreeStats
    effective_degree: int
    avg_comm_delay_ms: float
    events_processed: int
    sim_span_s: float
    extras: dict = field(default_factory=dict)

    @property
    def fidelity(self) -> float:
        """System fidelity in percent (100 = perfect)."""
        return 100.0 - self.loss_of_fidelity

    @property
    def messages(self) -> int:
        """Total update messages sent (Figure 11(b) metric)."""
        return self.counters.messages

    @property
    def source_checks(self) -> int:
        """Checks performed at the source (Figure 11(a) metric)."""
        return self.counters.source_checks

    @property
    def reconfiguration_cost(self) -> int:
        """Subscriptions (re)negotiated by mid-run churn (0 when static)."""
        return self.counters.resubscriptions

    def summary(self) -> str:
        """One-line human-readable digest."""
        text = (
            f"loss={self.loss_of_fidelity:.2f}% "
            f"messages={self.counters.messages} "
            f"source_checks={self.counters.source_checks} "
            f"degree={self.effective_degree} "
            f"depth<=|{self.tree_stats.max_depth}|"
        )
        if self.counters.reconfigurations:
            text += (
                f" reconf={self.counters.reconfigurations}"
                f"/cost={self.counters.resubscriptions}"
            )
        return text

"""End-to-end simulation engine.

Glues the substrates together: builds the physical network, the
workload's update traces and the interest profiles from a
:class:`~repro.engine.config.SimulationConfig`, constructs the ``d3g``
with LeLA, and drives the chosen dissemination policy through the
discrete-event kernel.  The single entry point most callers need is
:func:`~repro.engine.simulation.run_simulation`.
"""

from repro.engine.adaptive import (
    AdaptiveController,
    AdaptivePolicy,
    DriftEstimator,
    parse_adaptive_spec,
)
from repro.engine.churn import (
    ChurnEvent,
    ChurnSchedule,
    schedule_for_config,
    synthetic_schedule,
)
from repro.engine.config import KERNELS, SCALE_PRESETS, SimulationConfig
from repro.engine.builder import (
    SimulationSetup,
    build_setup,
    make_adaptive_controller,
    make_membership,
)
from repro.engine.failures import (
    FailureEvent,
    FailureSchedule,
    failures_for_config,
    synthetic_failures,
)
from repro.engine.results import SimulationResult
from repro.engine.simulation import (
    DisseminationSimulation,
    make_simulation,
    run_simulation,
)
from repro.engine.sweep import resolve_jobs, run_sweep
from repro.engine.vectorized import VectorizedSimulation

__all__ = [
    "SimulationConfig",
    "SCALE_PRESETS",
    "KERNELS",
    "SimulationSetup",
    "build_setup",
    "make_membership",
    "SimulationResult",
    "DisseminationSimulation",
    "VectorizedSimulation",
    "make_simulation",
    "run_simulation",
    "resolve_jobs",
    "run_sweep",
    "ChurnEvent",
    "ChurnSchedule",
    "schedule_for_config",
    "synthetic_schedule",
    "FailureEvent",
    "FailureSchedule",
    "failures_for_config",
    "synthetic_failures",
    "AdaptiveController",
    "AdaptivePolicy",
    "DriftEstimator",
    "make_adaptive_controller",
    "parse_adaptive_spec",
]

"""The dynamic-data dissemination graph (``d3g``) and per-item trees.

For one data item the dissemination structure is a tree (the paper's
``d3t``) rooted at the source; the union over all items is a graph
(``d3g``) in which a node has one *push connection* per distinct child,
no matter how many items flow over it (Section 4).

Key invariants (validated by :meth:`DisseminationGraph.validate`):

- per item, parent pointers form a tree rooted at the source;
- along every path the *receive coherency* is non-increasing in
  stringency toward the leaves, i.e. ``c_parent <= c_child`` (Eq. 1);
- a node's receive coherency for an item is at least as stringent as its
  own requirement and every dependent's receive coherency;
- no node exceeds its offered degree of cooperation (in push
  connections).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TreeConstructionError

__all__ = ["NodeState", "DisseminationGraph", "TreeStats"]


@dataclass
class NodeState:
    """Per-node bookkeeping inside the ``d3g``.

    Attributes:
        node: Node id.
        level: Depth in the graph; the source is level 0.
        receive_c: ``item_id -> c`` at which this node *receives* each
            item (0.0 for every item at the source).  This is the node's
            serving capability: it can serve item ``x`` to anyone whose
            tolerance is >= ``receive_c[x]``.
        own_c: ``item_id -> c`` the node's own users require (empty at
            the source); ``receive_c`` is always <= ``own_c`` item-wise.
        parent_for: ``item_id -> parent node id`` for items received.
        children: ``child node id -> set of item_ids`` served to it.
    """

    node: int
    level: int
    receive_c: dict[int, float] = field(default_factory=dict)
    own_c: dict[int, float] = field(default_factory=dict)
    parent_for: dict[int, int] = field(default_factory=dict)
    children: dict[int, set[int]] = field(default_factory=dict)

    @property
    def n_dependents(self) -> int:
        """Number of push connections (distinct children)."""
        return len(self.children)


@dataclass
class TreeStats:
    """Shape statistics the paper reports for constructed graphs."""

    n_nodes: int
    n_levels: int
    max_depth: int
    mean_depth: float
    max_dependents: int
    mean_dependents: float
    diameter_hops: int


class DisseminationGraph:
    """The union of all per-item dissemination trees.

    Built incrementally by :class:`repro.core.lela.LelaBuilder`; consumed
    by the dissemination engine, which asks two questions:
    ``children_for_item(node, item)`` and ``receive_c(node, item)``.
    """

    def __init__(self, source: int) -> None:
        self.source = source
        self.nodes: dict[int, NodeState] = {
            source: NodeState(node=source, level=0)
        }
        self.levels: list[list[int]] = [[source]]

    # ------------------------------------------------------------------
    # Mutation (used by LeLA)
    # ------------------------------------------------------------------

    def add_node(self, node: int, level: int, own_c: dict[int, float]) -> NodeState:
        """Register a repository at ``level`` with its own requirements."""
        if node in self.nodes:
            raise TreeConstructionError(f"node {node} already in the graph")
        if level < 1:
            raise TreeConstructionError(
                f"repositories must join at level >= 1, got {level}"
            )
        if level > len(self.levels):
            raise TreeConstructionError(
                f"cannot create level {level}: deepest level is {len(self.levels) - 1}"
            )
        state = NodeState(node=node, level=level, own_c=dict(own_c))
        self.nodes[node] = state
        if level == len(self.levels):
            self.levels.append([])
        self.levels[level].append(node)
        return state

    def connect(self, parent: int, child: int, item_id: int, c: float) -> None:
        """Make ``parent`` serve ``item_id`` to ``child`` at coherency ``c``.

        The child's receive coherency for the item becomes ``c``; the
        caller is responsible for having ensured the parent can serve at
        that stringency (``parent.receive_c[item] <= c``).
        """
        parent_state = self.nodes[parent]
        child_state = self.nodes[child]
        if item_id in child_state.parent_for and child_state.parent_for[item_id] != parent:
            raise TreeConstructionError(
                f"item {item_id}: node {child} already served by "
                f"{child_state.parent_for[item_id]}, cannot also attach to {parent}"
            )
        parent_received = parent_state.receive_c.get(item_id)
        if parent != self.source:
            if parent_received is None:
                raise TreeConstructionError(
                    f"item {item_id}: parent {parent} does not receive it"
                )
            if parent_received > c:
                raise TreeConstructionError(
                    f"item {item_id}: parent {parent} receives at "
                    f"{parent_received} which is laxer than requested {c}"
                )
        child_state.parent_for[item_id] = parent
        child_state.receive_c[item_id] = c
        parent_state.children.setdefault(child, set()).add(item_id)

    def tighten(self, node: int, item_id: int, c: float) -> None:
        """Tighten the coherency at which ``node`` receives ``item_id``."""
        state = self.nodes[node]
        if item_id not in state.receive_c:
            raise TreeConstructionError(
                f"node {node} does not receive item {item_id}; cannot tighten"
            )
        if c < state.receive_c[item_id]:
            state.receive_c[item_id] = c

    # ------------------------------------------------------------------
    # Queries (used by the engine and experiments)
    # ------------------------------------------------------------------

    @property
    def repositories(self) -> list[int]:
        """All nodes except the source, in join order."""
        return [n for n in self.nodes if n != self.source]

    def n_dependents(self, node: int) -> int:
        """Push connections used by ``node``."""
        return self.nodes[node].n_dependents

    def receive_c(self, node: int, item_id: int) -> float:
        """Coherency at which ``node`` receives ``item_id``.

        The source holds every item natively at perfect coherency (0.0).
        """
        if node == self.source:
            return 0.0
        return self.nodes[node].receive_c[item_id]

    def children_for_item(self, node: int, item_id: int) -> list[tuple[int, float]]:
        """Dependents of ``node`` for one item, with their serve coherency.

        Returns ``[(child, c), ...]`` where ``c`` is the coherency the
        child must be kept within (its receive coherency for the item).
        """
        state = self.nodes[node]
        out = []
        for child, items in state.children.items():
            if item_id in items:
                out.append((child, self.nodes[child].receive_c[item_id]))
        return out

    def item_tree(self, item_id: int) -> dict[int, int]:
        """Parent pointers ``child -> parent`` of one item's ``d3t``."""
        tree: dict[int, int] = {}
        for node, state in self.nodes.items():
            if item_id in state.parent_for:
                tree[node] = state.parent_for[item_id]
        return tree

    def item_depth(self, node: int, item_id: int) -> int:
        """Hops from the source to ``node`` along the item's tree."""
        depth = 0
        current = node
        guard = len(self.nodes) + 1
        while current != self.source:
            current = self.nodes[current].parent_for[item_id]
            depth += 1
            guard -= 1
            if guard < 0:
                raise TreeConstructionError(
                    f"item {item_id}: cycle reaching source from node {node}"
                )
        return depth

    def interested_repositories(self, item_id: int) -> list[int]:
        """Repositories that receive ``item_id`` (own need or relaying)."""
        return [
            n
            for n, s in self.nodes.items()
            if n != self.source and item_id in s.receive_c
        ]

    def stats(self) -> TreeStats:
        """Shape statistics over the whole ``d3g``."""
        repos = self.repositories
        depths = [self.nodes[n].level for n in repos]
        dependents = [self.nodes[n].n_dependents for n in self.nodes]
        # Diameter: deepest item-tree path (in dissemination hops).
        max_item_depth = 0
        for node, state in self.nodes.items():
            for item_id in state.receive_c:
                if node == self.source:
                    continue
                d = self.item_depth(node, item_id)
                if d > max_item_depth:
                    max_item_depth = d
        return TreeStats(
            n_nodes=len(self.nodes),
            n_levels=len(self.levels),
            max_depth=max(depths) if depths else 0,
            mean_depth=(sum(depths) / len(depths)) if depths else 0.0,
            max_dependents=max(dependents) if dependents else 0,
            mean_dependents=(sum(dependents) / len(dependents)) if dependents else 0.0,
            diameter_hops=max_item_depth,
        )

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self, max_dependents: dict[int, int] | None = None) -> None:
        """Check every structural invariant; raise on the first violation.

        Args:
            max_dependents: Optional per-node push-connection budgets to
                check capacity against (the offered degrees of
                cooperation).

        Raises:
            TreeConstructionError: describing the violated invariant.
        """
        for node, state in self.nodes.items():
            if node == self.source:
                continue
            for item_id, c in state.receive_c.items():
                own = state.own_c.get(item_id)
                if own is not None and c > own + 1e-12:
                    raise TreeConstructionError(
                        f"node {node} receives item {item_id} at {c} but "
                        f"its own requirement is stricter ({own})"
                    )
                parent = state.parent_for.get(item_id)
                if parent is None:
                    raise TreeConstructionError(
                        f"node {node} receives item {item_id} without a parent"
                    )
                parent_state = self.nodes[parent]
                if parent != self.source:
                    pc = parent_state.receive_c.get(item_id)
                    if pc is None:
                        raise TreeConstructionError(
                            f"item {item_id}: parent {parent} of {node} "
                            "does not itself receive the item"
                        )
                    if pc > c + 1e-12:
                        raise TreeConstructionError(
                            f"item {item_id}: Eq. (1) violated on edge "
                            f"{parent}->{node}: {pc} > {c}"
                        )
                if item_id not in parent_state.children.get(node, set()):
                    raise TreeConstructionError(
                        f"item {item_id}: edge {parent}->{node} not in "
                        "parent's child table"
                    )
                # Reachability: walking parents must hit the source.
                self.item_depth(node, item_id)
        if max_dependents is not None:
            for node, state in self.nodes.items():
                budget = max_dependents.get(node)
                if budget is not None and state.n_dependents > budget:
                    raise TreeConstructionError(
                        f"node {node} has {state.n_dependents} dependents, "
                        f"exceeding its offered degree {budget}"
                    )

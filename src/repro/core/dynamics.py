"""Repository membership dynamics.

Section 4 of the paper: *"If a repository's data needs change or its
data coherency needs change, then to handle the changed requirements,
the algorithm is reapplied."*  This module implements that reapplication
as a managed wrapper around LeLA, plus the bookkeeping a deployment
needs: which service edges changed, so only the affected subscriptions
must be re-negotiated between real nodes.

Joins are incremental (LeLA is already an online algorithm); coherency
changes and departures rebuild the graph in the original join order,
exactly as the paper prescribes, and report the edge-level diff.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.interests import InterestProfile
from repro.core.lela import LelaBuilder
from repro.core.preference import PreferenceFunction, preference_p1
from repro.core.tree import DisseminationGraph
from repro.errors import TreeConstructionError

__all__ = ["ReconfigurationDiff", "DynamicMembership", "edges_of"]

#: One service edge: (parent, child, item, serve coherency).
_Edge = tuple[int, int, int, float]


@dataclass(frozen=True)
class ReconfigurationDiff:
    """Edge-level difference between two dissemination graphs."""

    added: frozenset
    removed: frozenset

    @property
    def cost(self) -> int:
        """Number of subscriptions that must be (re)negotiated."""
        return len(self.added) + len(self.removed)

    @property
    def unchanged_is_cheap(self) -> bool:
        """True when nothing changed at all."""
        return not self.added and not self.removed


def edges_of(graph: DisseminationGraph) -> frozenset:
    """All service edges of ``graph`` as ``(parent, child, item, c)`` tuples.

    The canonical edge representation diffed by
    :class:`ReconfigurationDiff` consumers (membership churn, failure
    failover and adaptive re-optimization all compare graphs this way).
    """
    edges: set[_Edge] = set()
    for node, state in graph.nodes.items():
        for child, items in state.children.items():
            for item_id in items:
                edges.add(
                    (node, child, item_id, graph.nodes[child].receive_c[item_id])
                )
    return frozenset(edges)


#: Backwards-compatible private alias (pre-adaptive callers).
_edges_of = edges_of


class DynamicMembership:
    """A living repository network: join, leave, change requirements.

    Args:
        source: Source node id.
        comm_delay_ms: ``(u, v) -> ms`` oracle (as for LeLA).
        offered_degree: Degree of cooperation, for every node (including
            joins that arrive later).
        preference: LeLA preference factor.
        p_percent: Load-controller admission band.
        seed: Seed for LeLA's random-parent augmentation rule; rebuilds
            reuse it so unchanged memberships rebuild identically.
    """

    def __init__(
        self,
        source: int,
        comm_delay_ms,
        offered_degree: int,
        preference: PreferenceFunction = preference_p1,
        p_percent: float = 5.0,
        seed: int = 0,
    ) -> None:
        self._source = source
        self._comm_delay_ms = comm_delay_ms
        self._offered_degree = offered_degree
        self._preference = preference
        self._p_percent = p_percent
        self._seed = seed
        self._profiles: dict[int, InterestProfile] = {}
        self._join_order: list[int] = []
        self.graph = self._fresh_builder().graph

    # ------------------------------------------------------------------

    def _fresh_builder(self) -> LelaBuilder:
        return LelaBuilder(
            source=self._source,
            comm_delay_ms=self._comm_delay_ms,
            offered_degree={},  # filled per insert via _budgets
            preference=self._preference,
            p_percent=self._p_percent,
            rng=np.random.default_rng(self._seed),
        )

    def _budgets(self) -> dict[int, int]:
        budgets = {self._source: self._offered_degree}
        budgets.update({r: self._offered_degree for r in self._profiles})
        return budgets

    def _rebuild(self) -> DisseminationGraph:
        builder = LelaBuilder(
            source=self._source,
            comm_delay_ms=self._comm_delay_ms,
            offered_degree=self._budgets(),
            preference=self._preference,
            p_percent=self._p_percent,
            rng=np.random.default_rng(self._seed),
        )
        for repo in self._join_order:
            builder.insert(self._profiles[repo])
        graph = builder.graph
        graph.validate(max_dependents=self._budgets())
        return graph

    # ------------------------------------------------------------------

    @property
    def members(self) -> list[int]:
        """Current repositories in join order."""
        return list(self._join_order)

    def profile_of(self, repo: int) -> InterestProfile:
        """The stored profile for a member.

        Raises:
            TreeConstructionError: for unknown members.
        """
        try:
            return self._profiles[repo]
        except KeyError:
            raise TreeConstructionError(f"repository {repo} is not a member") from None

    def validate(self) -> None:
        """Check every graph invariant against the current budgets.

        Raises:
            TreeConstructionError: on the first violated invariant.
        """
        self.graph.validate(max_dependents=self._budgets())

    def join(self, profile: InterestProfile, validate: bool = True) -> ReconfigurationDiff:
        """Add a repository incrementally (LeLA insertion).

        Args:
            profile: The newcomer's interests.
            validate: Check all graph invariants after the insertion.
                Bulk replays (rebuilding a known-good membership) may
                pass ``False`` and call :meth:`validate` once at the
                end; validation is a check only, never a mutation, so
                skipping it cannot change the constructed graph.
        """
        if profile.repository in self._profiles:
            raise TreeConstructionError(
                f"repository {profile.repository} already joined"
            )
        before = _edges_of(self.graph)
        self._profiles[profile.repository] = profile
        self._join_order.append(profile.repository)
        # Incremental: insert into the live graph with updated budgets.
        builder = LelaBuilder(
            source=self._source,
            comm_delay_ms=self._comm_delay_ms,
            offered_degree=self._budgets(),
            preference=self._preference,
            p_percent=self._p_percent,
            rng=np.random.default_rng(self._seed + len(self._join_order)),
        )
        builder.graph = self.graph
        builder.insert(profile)
        if validate:
            self.validate()
        after = _edges_of(self.graph)
        return ReconfigurationDiff(added=after - before, removed=before - after)

    def leave(self, repo: int) -> ReconfigurationDiff:
        """Remove a repository; the algorithm is reapplied (rebuild)."""
        if repo not in self._profiles:
            raise TreeConstructionError(f"repository {repo} is not a member")
        before = _edges_of(self.graph)
        del self._profiles[repo]
        self._join_order.remove(repo)
        self.graph = self._rebuild()
        after = _edges_of(self.graph)
        return ReconfigurationDiff(added=after - before, removed=before - after)

    def update_requirements(self, profile: InterestProfile) -> ReconfigurationDiff:
        """Change a member's data or coherency needs (reapply LeLA)."""
        if profile.repository not in self._profiles:
            raise TreeConstructionError(
                f"repository {profile.repository} is not a member"
            )
        before = _edges_of(self.graph)
        self._profiles[profile.repository] = profile
        self.graph = self._rebuild()
        after = _edges_of(self.graph)
        return ReconfigurationDiff(added=after - before, removed=before - after)

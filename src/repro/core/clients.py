"""The client layer (Sections 1.2 and 2).

Clients connect to repositories, not to the source.  Each client
specifies its own coherency requirement per data item; since several
clients share a repository, *"the coherency requirement for data item x
at a repository R is defined to be the most stringent coherency
requirement across all clients that obtain x from R"*.

This module models client populations and derives the repository
interest profiles the rest of the library consumes, plus the reverse
check a deployment needs: given what a repository achieved, which
clients' requirements were actually met.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.interests import InterestProfile
from repro.core.items import CoherencyMix, DataItem
from repro.errors import ConfigurationError

__all__ = [
    "Client",
    "ClientPopulation",
    "derive_repository_profiles",
    "requirement_report",
]


@dataclass(frozen=True)
class Client:
    """One end client: attached to a repository, wanting items at tolerances.

    Attributes:
        client_id: Unique client identifier.
        repository: Node id of the repository the client reads from.
        requirements: ``item_id -> c`` tolerances this client needs.
    """

    client_id: int
    repository: int
    requirements: dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for item_id, c in self.requirements.items():
            if c <= 0:
                raise ConfigurationError(
                    f"client {self.client_id}: tolerance for item {item_id} "
                    f"must be positive, got {c!r}"
                )


@dataclass
class ClientPopulation:
    """All clients of a deployment, indexable by repository."""

    clients: list[Client] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.clients)

    def at_repository(self, repository: int) -> list[Client]:
        """Clients attached to one repository."""
        return [c for c in self.clients if c.repository == repository]

    def repositories(self) -> list[int]:
        """Repositories that have at least one client, sorted."""
        return sorted({c.repository for c in self.clients})

    def satisfied_by(self, repository: int, item_id: int, achieved_c: float) -> list[Client]:
        """Clients of ``repository`` whose requirement ``achieved_c`` meets.

        A client is satisfied when the repository's achieved coherency
        for the item is at least as stringent as the client's own need.
        """
        return [
            c
            for c in self.at_repository(repository)
            if item_id in c.requirements and achieved_c <= c.requirements[item_id]
        ]

    @classmethod
    def generate(
        cls,
        repositories: list[int],
        items: list[DataItem],
        mix: CoherencyMix,
        rng: np.random.Generator,
        clients_per_repository: int = 5,
        subscription_probability: float = 0.5,
    ) -> "ClientPopulation":
        """Random population in the paper's style.

        Each repository hosts ``clients_per_repository`` clients; each
        client wants each item with ``subscription_probability`` and
        draws its tolerance from the stringent/lax mix.
        """
        if clients_per_repository < 1:
            raise ConfigurationError(
                "clients_per_repository must be >= 1, "
                f"got {clients_per_repository!r}"
            )
        if not 0.0 < subscription_probability <= 1.0:
            raise ConfigurationError(
                "subscription_probability must be in (0, 1], "
                f"got {subscription_probability!r}"
            )
        item_ids = np.array([item.item_id for item in items])
        clients: list[Client] = []
        next_id = 0
        for repo in repositories:
            for _ in range(clients_per_repository):
                wanted = item_ids[rng.random(len(item_ids)) < subscription_probability]
                if wanted.size == 0:
                    wanted = np.array([rng.choice(item_ids)])
                tolerances = mix.draw(wanted.size, rng)
                clients.append(
                    Client(
                        client_id=next_id,
                        repository=repo,
                        requirements={
                            int(i): float(c) for i, c in zip(wanted, tolerances)
                        },
                    )
                )
                next_id += 1
        return cls(clients=clients)


def derive_repository_profiles(
    population: ClientPopulation,
) -> dict[int, InterestProfile]:
    """Fold client requirements into per-repository interest profiles.

    For every repository and item, the derived tolerance is the minimum
    (most stringent) over the repository's clients -- Section 1.2's rule.
    Repositories without clients are omitted.
    """
    derived: dict[int, dict[int, float]] = {}
    for client in population.clients:
        reqs = derived.setdefault(client.repository, {})
        for item_id, c in client.requirements.items():
            if item_id not in reqs or c < reqs[item_id]:
                reqs[item_id] = c
    return {
        repo: InterestProfile(repository=repo, requirements=reqs)
        for repo, reqs in sorted(derived.items())
    }


def requirement_report(
    population: ClientPopulation,
    achieved_c: dict[tuple[int, int], float],
) -> dict[int, dict[int, bool]]:
    """Which client requirements does a deployment's achievement meet?

    The reverse of :func:`derive_repository_profiles`: given the
    coherency each (repository, item) pair actually achieved (e.g. the
    tolerance the repository receives the item at, or a measured
    effective tolerance), report per client and item whether the
    achievement is at least as stringent as the client's own need.  An
    item the client's repository does not achieve at all is unmet.

    Args:
        population: The client population.
        achieved_c: ``(repository, item_id) -> c`` actually achieved.

    Returns:
        ``client_id -> {item_id -> requirement met}`` covering every
        requirement of every client.
    """
    report: dict[int, dict[int, bool]] = {}
    for client in population.clients:
        per_item: dict[int, bool] = {}
        for item_id, needed in client.requirements.items():
            achieved = achieved_c.get((client.repository, item_id))
            per_item[item_id] = achieved is not None and achieved <= needed
        report[client.client_id] = per_item
    return report

"""Message and check accounting (Section 6.2 and Figure 11).

Besides fidelity, the paper measures:

- the number of update messages sent system-wide (cost of coherency
  maintenance; Figure 11(b) shows the two exact policies send the same
  number), and
- the number of checks performed on incoming data values, especially at
  the source (Figure 11(a) shows the centralised policy does ~50% more
  at the source than the distributed policy does).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CostCounters"]


@dataclass
class CostCounters:
    """Mutable counters threaded through one simulation run."""

    messages: int = 0
    source_checks: int = 0
    repository_checks: int = 0
    source_messages: int = 0
    deliveries: int = 0
    drops: int = 0
    reconfigurations: int = 0
    edges_added: int = 0
    edges_removed: int = 0
    per_node_messages: dict[int, int] = field(default_factory=dict)
    per_node_checks: dict[int, int] = field(default_factory=dict)

    @property
    def total_checks(self) -> int:
        """All coherency checks performed anywhere in the system."""
        return self.source_checks + self.repository_checks

    @property
    def resubscriptions(self) -> int:
        """Service edges (re)negotiated by churn reconfigurations.

        This is the sum of :attr:`ReconfigurationDiff.cost
        <repro.core.dynamics.ReconfigurationDiff.cost>` over every churn
        event applied during the run: each added or removed edge is one
        subscription a real deployment would have to (re)negotiate.
        """
        return self.edges_added + self.edges_removed

    def record_check(self, node: int, is_source: bool, count: int = 1) -> None:
        """Count ``count`` coherency checks at ``node``."""
        if is_source:
            self.source_checks += count
        else:
            self.repository_checks += count
        self.per_node_checks[node] = self.per_node_checks.get(node, 0) + count

    def record_message(self, sender: int, is_source: bool) -> None:
        """Count one update message leaving ``sender``."""
        self.messages += 1
        if is_source:
            self.source_messages += 1
        self.per_node_messages[sender] = self.per_node_messages.get(sender, 0) + 1

    def record_delivery(self) -> None:
        """Count one message arriving at a repository."""
        self.deliveries += 1

    def record_drop(self) -> None:
        """Count one message lost in transit (failure injection or a
        delivery toward a repository that departed while it was in
        flight)."""
        self.drops += 1

    def record_reconfiguration(self, n_added: int, n_removed: int) -> None:
        """Count one churn reconfiguration and its edge-level cost."""
        self.reconfigurations += 1
        self.edges_added += n_added
        self.edges_removed += n_removed

    def busiest_sender(self) -> tuple[int, int] | None:
        """(node, messages) for the node that sent the most messages."""
        if not self.per_node_messages:
            return None
        node = max(self.per_node_messages, key=lambda n: self.per_node_messages[n])
        return node, self.per_node_messages[node]

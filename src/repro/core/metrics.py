"""Message and check accounting (Section 6.2 and Figure 11).

Besides fidelity, the paper measures:

- the number of update messages sent system-wide (cost of coherency
  maintenance; Figure 11(b) shows the two exact policies send the same
  number), and
- the number of checks performed on incoming data values, especially at
  the source (Figure 11(a) shows the centralised policy does ~50% more
  at the source than the distributed policy does).

The modeled-client plane (``clients_per_repository``) gets separate
``client_checks``/``client_messages`` fields, mirroring the live layer's
convention of keeping client-serving cost out of the repository-plane
message economy (:mod:`repro.live.nodes` does the same with its
``client_messages`` attribute).

:class:`ArrayCounters` is the struct-of-arrays accumulator the
vectorized kernel (:mod:`repro.engine.vectorized`) uses on its hot path:
per-node tallies live in dense numpy arrays instead of dicts, and are
folded into an ordinary :class:`CostCounters` once at the end of the
run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CostCounters", "ArrayCounters"]


@dataclass
class CostCounters:
    """Mutable counters threaded through one simulation run."""

    messages: int = 0
    source_checks: int = 0
    repository_checks: int = 0
    source_messages: int = 0
    deliveries: int = 0
    drops: int = 0
    reconfigurations: int = 0
    edges_added: int = 0
    edges_removed: int = 0
    client_checks: int = 0
    client_messages: int = 0
    resyncs: int = 0
    resync_checks: int = 0
    resync_messages: int = 0
    per_node_messages: dict[int, int] = field(default_factory=dict)
    per_node_checks: dict[int, int] = field(default_factory=dict)

    @property
    def total_checks(self) -> int:
        """All coherency checks performed anywhere in the system."""
        return self.source_checks + self.repository_checks

    @property
    def resubscriptions(self) -> int:
        """Service edges (re)negotiated by churn reconfigurations.

        This is the sum of :attr:`ReconfigurationDiff.cost
        <repro.core.dynamics.ReconfigurationDiff.cost>` over every churn
        event applied during the run: each added or removed edge is one
        subscription a real deployment would have to (re)negotiate.
        """
        return self.edges_added + self.edges_removed

    def record_check(self, node: int, is_source: bool, count: int = 1) -> None:
        """Count ``count`` coherency checks at ``node``."""
        if is_source:
            self.source_checks += count
        else:
            self.repository_checks += count
        self.per_node_checks[node] = self.per_node_checks.get(node, 0) + count

    def record_message(self, sender: int, is_source: bool) -> None:
        """Count one update message leaving ``sender``."""
        self.messages += 1
        if is_source:
            self.source_messages += 1
        self.per_node_messages[sender] = self.per_node_messages.get(sender, 0) + 1

    def record_delivery(self) -> None:
        """Count one message arriving at a repository."""
        self.deliveries += 1

    def record_drop(self) -> None:
        """Count one message lost in transit (failure injection or a
        delivery toward a repository that departed while it was in
        flight)."""
        self.drops += 1

    def record_reconfiguration(self, n_added: int, n_removed: int) -> None:
        """Count one churn reconfiguration and its edge-level cost."""
        self.reconfigurations += 1
        self.edges_added += n_added
        self.edges_removed += n_removed

    def record_resync(self, checks: int, messages: int) -> None:
        """Count one anti-entropy resync of a recovering repository.

        ``checks`` per-item comparisons were made against the live
        parent (the setdiscovery-style discovery round) and ``messages``
        stale copies actually transferred -- the missed update-set, so
        ``messages <= checks`` always, versus ``checks`` transfers for a
        full-state sync.  Kept out of the repository-plane ``messages``
        economy, like reconfiguration cost.
        """
        self.resyncs += 1
        self.resync_checks += checks
        self.resync_messages += messages

    def record_client_serving(self, checks: int, messages: int) -> None:
        """Count one delivery's worth of modeled-client filtering.

        ``checks`` filter evaluations were performed (one per attached
        client) and ``messages`` of them forwarded.  Kept out of the
        repository-plane ``messages``/``*_checks`` economy, matching the
        live layer's separate client accounting.
        """
        self.client_checks += checks
        self.client_messages += messages

    def merge(self, other: "CostCounters") -> None:
        """Fold another run-fragment's counters into this one.

        The fleet supervisor merges per-worker counters with this:
        every scalar field adds, the per-node dicts union-add.  Merging
        is commutative and associative, so the fleet total is
        independent of worker arrival order.
        """
        self.messages += other.messages
        self.source_checks += other.source_checks
        self.repository_checks += other.repository_checks
        self.source_messages += other.source_messages
        self.deliveries += other.deliveries
        self.drops += other.drops
        self.reconfigurations += other.reconfigurations
        self.edges_added += other.edges_added
        self.edges_removed += other.edges_removed
        self.client_checks += other.client_checks
        self.client_messages += other.client_messages
        self.resyncs += other.resyncs
        self.resync_checks += other.resync_checks
        self.resync_messages += other.resync_messages
        for node, count in other.per_node_messages.items():
            self.per_node_messages[node] = (
                self.per_node_messages.get(node, 0) + count
            )
        for node, count in other.per_node_checks.items():
            self.per_node_checks[node] = self.per_node_checks.get(node, 0) + count

    def busiest_sender(self) -> tuple[int, int] | None:
        """(node, messages) for the node that sent the most messages."""
        if not self.per_node_messages:
            return None
        node = max(self.per_node_messages, key=lambda n: self.per_node_messages[n])
        return node, self.per_node_messages[node]


class ArrayCounters:
    """Struct-of-arrays accumulator for the vectorized kernel's hot path.

    The scalar engine updates :class:`CostCounters` dicts once per
    (update, dependent) pair; at 10^5+ modeled clients that dict traffic
    dominates.  This accumulator keeps the per-node tallies in two dense
    arrays indexed by node id and the scalar totals as plain ints, then
    folds everything into a :class:`CostCounters` -- equal, field for
    field, to what the scalar engine would have produced (dict equality
    is insertion-order-insensitive, so sparsifying at the end is safe).
    """

    __slots__ = (
        "messages",
        "source_checks",
        "repository_checks",
        "source_messages",
        "deliveries",
        "drops",
        "client_checks",
        "client_messages",
        "node_messages",
        "node_checks",
    )

    def __init__(self, n_nodes: int) -> None:
        self.messages = 0
        self.source_checks = 0
        self.repository_checks = 0
        self.source_messages = 0
        self.deliveries = 0
        self.drops = 0
        self.client_checks = 0
        self.client_messages = 0
        self.node_messages = np.zeros(n_nodes, dtype=np.int64)
        self.node_checks = np.zeros(n_nodes, dtype=np.int64)

    def record_checks(self, node: int, is_source: bool, count: int) -> None:
        """Count ``count`` coherency checks at ``node`` (dense-array form)."""
        if is_source:
            self.source_checks += count
        else:
            self.repository_checks += count
        self.node_checks[node] += count

    def record_messages(self, sender: int, is_source: bool, count: int) -> None:
        """Count ``count`` update messages leaving ``sender``."""
        self.messages += count
        if is_source:
            self.source_messages += count
        self.node_messages[sender] += count

    def to_cost_counters(self) -> CostCounters:
        """Fold into the dict-backed form the rest of the repo consumes."""
        counters = CostCounters(
            messages=self.messages,
            source_checks=self.source_checks,
            repository_checks=self.repository_checks,
            source_messages=self.source_messages,
            deliveries=self.deliveries,
            drops=self.drops,
            client_checks=self.client_checks,
            client_messages=self.client_messages,
        )
        for node in np.nonzero(self.node_messages)[0]:
            counters.per_node_messages[int(node)] = int(self.node_messages[node])
        for node in np.nonzero(self.node_checks)[0]:
            counters.per_node_checks[int(node)] = int(self.node_checks[node])
        return counters

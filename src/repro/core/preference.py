"""LeLA preference factors (Section 4).

The per-level load controller ranks candidate parents by a *preference
factor*; smaller is more preferred.  The paper combines three signals:

1. *Data availability*: how many of the newcomer's items the candidate
   can already serve (more is better).
2. *Computational delay*: approximated by the candidate's current number
   of dependents (fewer is better).
3. *Communication delay*: network delay between candidate and newcomer
   (smaller is better).

``P1`` is the paper's factor,
``(comm_delay * (1 + n_dependents)) / (1 + availability)``.
``P2`` is the Figure 10 alternative that drops the availability term,
``comm_delay * (1 + n_dependents)``.  The paper shows the choice barely
matters once the degree of cooperation is controlled; Figure 10's
reproduction checks that.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError

__all__ = [
    "PreferenceFunction",
    "preference_p1",
    "preference_p2",
    "get_preference_function",
]

#: Signature: (comm_delay_ms, n_dependents, availability) -> preference.
PreferenceFunction = Callable[[float, int, int], float]


def preference_p1(comm_delay_ms: float, n_dependents: int, availability: int) -> float:
    """The paper's preference factor (smaller = more preferred).

    ``(communication delay * computational-load proxy) / data availability``
    with ``+1`` regularisers so empty candidates are comparable.
    """
    return comm_delay_ms * (1.0 + n_dependents) / (1.0 + availability)


def preference_p2(comm_delay_ms: float, n_dependents: int, availability: int) -> float:
    """Figure 10's alternative: ignores data availability entirely."""
    return comm_delay_ms * (1.0 + n_dependents)


_REGISTRY: dict[str, PreferenceFunction] = {
    "p1": preference_p1,
    "p2": preference_p2,
}


def get_preference_function(name: str) -> PreferenceFunction:
    """Look up a preference function by name (``"p1"`` or ``"p2"``).

    Raises:
        ConfigurationError: on an unknown name.
    """
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown preference function {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None

"""Fidelity -- the paper's key metric (Sections 1.1 and 6.2).

Fidelity of a data item at a repository is the fraction of the
observation window during which ``|S(t) - R(t)| <= c`` holds, where ``S``
is the source value (the trace, a step function), ``R`` is the step
function of values *received* at the repository, and ``c`` is the
repository's own (user-level) tolerance.  Repository fidelity is the mean
over its items; system fidelity is the mean over repositories.  Results
are reported as *loss of fidelity* = 100 - fidelity, in percent.

The computation merges the two step functions' breakpoints and sums the
interval lengths where the deviation exceeds ``c`` -- O((m+n) log(m+n))
per (repository, item) pair, vectorised with numpy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "violation_time",
    "loss_of_fidelity",
    "segmented_loss",
    "FidelityAccumulator",
]


def _step_values_at(
    times: np.ndarray, values: np.ndarray, query: np.ndarray
) -> np.ndarray:
    """Evaluate a right-continuous step function at query points.

    ``times`` must be sorted ascending and ``query[0] >= times[0]``.
    """
    idx = np.searchsorted(times, query, side="right") - 1
    return values[idx]


def violation_time(
    source_times: np.ndarray,
    source_values: np.ndarray,
    recv_times: np.ndarray,
    recv_values: np.ndarray,
    c: float,
    t_start: float,
    t_end: float,
) -> float:
    """Total time in ``[t_start, t_end]`` where ``|S(t) - R(t)| > c``.

    Args:
        source_times / source_values: The source step function (sorted).
        recv_times / recv_values: The repository's receive events
            (sorted); must include a priming entry at or before
            ``t_start``.
        c: The coherency tolerance (strictly positive).
        t_start, t_end: Observation window.

    Raises:
        ConfigurationError: on an empty/invalid window, a non-positive
            tolerance, or series that do not cover ``t_start``.
    """
    if c <= 0:
        raise ConfigurationError(f"tolerance must be positive, got {c!r}")
    if t_end < t_start:
        raise ConfigurationError(f"empty window [{t_start!r}, {t_end!r}]")
    if t_end == t_start:
        return 0.0
    source_times = np.asarray(source_times, dtype=float)
    source_values = np.asarray(source_values, dtype=float)
    recv_times = np.asarray(recv_times, dtype=float)
    recv_values = np.asarray(recv_values, dtype=float)
    if source_times.size == 0 or recv_times.size == 0:
        raise ConfigurationError("both step functions need at least one sample")
    if source_times[0] > t_start or recv_times[0] > t_start:
        raise ConfigurationError(
            "step functions must be defined from t_start "
            f"(source starts {source_times[0]!r}, recv starts {recv_times[0]!r}, "
            f"window starts {t_start!r})"
        )

    breaks = np.concatenate(([t_start], source_times, recv_times, [t_end]))
    breaks = np.unique(breaks)
    breaks = breaks[(breaks >= t_start) & (breaks <= t_end)]
    if breaks.size < 2:
        return 0.0
    starts = breaks[:-1]
    widths = np.diff(breaks)
    deviation = np.abs(
        _step_values_at(source_times, source_values, starts)
        - _step_values_at(recv_times, recv_values, starts)
    )
    return float(widths[deviation > c].sum())


def loss_of_fidelity(
    source_times: np.ndarray,
    source_values: np.ndarray,
    recv_times: np.ndarray,
    recv_values: np.ndarray,
    c: float,
    t_start: float,
    t_end: float,
) -> float:
    """Loss of fidelity in percent over the window (0 = perfect)."""
    if t_end <= t_start:
        return 0.0
    violated = violation_time(
        source_times, source_values, recv_times, recv_values, c, t_start, t_end
    )
    return 100.0 * violated / (t_end - t_start)


def segmented_loss(
    source_times: np.ndarray,
    source_values: np.ndarray,
    recv_times,
    recv_values,
    segments,
    t0: float,
    t1: float,
) -> float | None:
    """Duration-weighted loss over the intervals a requirement was live.

    ``segments`` is a list of ``[start, end-or-None, c_own]`` entries:
    the (repository, item) pair's requirement was live from ``start`` to
    ``end`` (``None`` = still open) at tolerance ``c_own``.  Both the
    simulation engine and the live harness score churned/failed pairs
    through this one function, so the two planes cannot drift apart.

    Returns ``None`` when the requirement was never live inside
    ``[t0, t1]`` (nothing to score); a single open segment covering
    ``t0`` takes the exact code path of the static engine
    (:func:`loss_of_fidelity` over the full window, bit for bit).
    """
    if len(segments) == 1 and segments[0][0] <= t0 and segments[0][1] is None:
        return loss_of_fidelity(
            source_times,
            source_values,
            recv_times,
            recv_values,
            segments[0][2],
            t_start=t0,
            t_end=t1,
        )
    weighted = 0.0
    total = 0.0
    for start, end, c_own in segments:
        seg_start = max(float(start), t0)
        seg_end = t1 if end is None else min(float(end), t1)
        if seg_end <= seg_start:
            continue
        seg_loss = loss_of_fidelity(
            source_times,
            source_values,
            recv_times,
            recv_values,
            c_own,
            t_start=seg_start,
            t_end=seg_end,
        )
        weighted += seg_loss * (seg_end - seg_start)
        total += seg_end - seg_start
    if total <= 0.0:
        return None
    return weighted / total


@dataclass
class FidelityAccumulator:
    """Aggregates per-(repository, item) losses into the paper's metric.

    The paper averages item losses within a repository, then repository
    fidelities across the system (Section 6.2).
    """

    _per_repo: dict[int, list[float]] = field(default_factory=dict)

    def add(self, repository: int, item_id: int, loss_percent: float) -> None:
        """Record the loss for one (repository, item) pair."""
        if not 0.0 <= loss_percent <= 100.0 + 1e-9:
            raise ConfigurationError(
                f"loss must be a percentage, got {loss_percent!r}"
            )
        self._per_repo.setdefault(repository, []).append(loss_percent)

    def repository_loss(self, repository: int) -> float:
        """Mean loss over one repository's items."""
        losses = self._per_repo.get(repository)
        if not losses:
            return 0.0
        return sum(losses) / len(losses)

    def system_loss(self) -> float:
        """Mean repository loss over all repositories (the headline metric)."""
        if not self._per_repo:
            return 0.0
        repo_losses = [self.repository_loss(r) for r in self._per_repo]
        return sum(repo_losses) / len(repo_losses)

    def system_fidelity(self) -> float:
        """100 - system loss."""
        return 100.0 - self.system_loss()

    def per_repository(self) -> dict[int, float]:
        """Mapping repository -> mean loss."""
        return {r: self.repository_loss(r) for r in self._per_repo}

    def worst_repository(self) -> tuple[int, float] | None:
        """The repository with the highest loss, or None if empty."""
        per = self.per_repository()
        if not per:
            return None
        repo = max(per, key=lambda r: per[r])
        return repo, per[repo]

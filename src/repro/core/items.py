"""Data items and coherency-requirement mixes.

A coherency requirement ``c`` is the maximum permissible deviation of a
repository's copy from the source value (Section 1.1); here always in
value units (dollars), the harder of the two variants the paper considers.

The experiments parameterise stringency with ``T``: ``T%`` of a
repository's items get *stringent* tolerances drawn from $0.01-$0.099 and
the rest get *lax* tolerances from $0.1-$0.999 (Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["DataItem", "CoherencyMix"]


@dataclass(frozen=True)
class DataItem:
    """One dynamic data item (e.g. a stock ticker).

    Attributes:
        item_id: Dense integer id used throughout the engine.
        name: Human-readable identifier.
    """

    item_id: int
    name: str

    def __post_init__(self) -> None:
        if self.item_id < 0:
            raise ConfigurationError(f"item_id must be >= 0, got {self.item_id!r}")


@dataclass(frozen=True)
class CoherencyMix:
    """The paper's T% stringent / (100-T)% lax tolerance mix.

    Attributes:
        t_percent: Percentage of items per repository given a stringent
            tolerance (the paper's ``T``; 100 means all stringent).
        stringent_range: (low, high) dollars for stringent tolerances.
        lax_range: (low, high) dollars for lax tolerances.
    """

    t_percent: float
    stringent_range: tuple[float, float] = (0.01, 0.099)
    lax_range: tuple[float, float] = (0.1, 0.999)

    def __post_init__(self) -> None:
        if not 0.0 <= self.t_percent <= 100.0:
            raise ConfigurationError(
                f"t_percent must be in [0, 100], got {self.t_percent!r}"
            )
        for label, (lo, hi) in (
            ("stringent_range", self.stringent_range),
            ("lax_range", self.lax_range),
        ):
            if lo <= 0 or hi <= lo:
                raise ConfigurationError(f"invalid {label}: ({lo!r}, {hi!r})")

    def draw(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` coherency tolerances following the mix.

        Exactly ``round(T% * n)`` of the tolerances are stringent; which
        positions they land on is randomised.
        """
        if n < 0:
            raise ConfigurationError(f"n must be non-negative, got {n!r}")
        if n == 0:
            return np.empty(0, dtype=float)
        n_stringent = int(round(self.t_percent / 100.0 * n))
        tolerances = np.empty(n, dtype=float)
        tolerances[:n_stringent] = rng.uniform(*self.stringent_range, size=n_stringent)
        tolerances[n_stringent:] = rng.uniform(*self.lax_range, size=n - n_stringent)
        rng.shuffle(tolerances)
        return tolerances

    def is_stringent(self, c: float) -> bool:
        """Whether ``c`` falls in the stringent band."""
        lo, hi = self.stringent_range
        return lo <= c <= hi

"""The distributed (repository-based) dissemination policy (Section 5.1).

Each node keeps, per dependent and item, the last value it forwarded to
that dependent.  An incoming update ``v`` is forwarded to dependent ``q``
(serving coherency ``c_q``) when either

- Eq. (3):  ``|v - last_sent(q)| > c_q``  (q's tolerance is violated), or
- Eq. (7):  ``c_q - |v - last_sent(q)| < c_p``  (q's remaining slack has
  shrunk below ``c_p``, the coherency at which this node itself receives
  the item -- so the *next* update could violate q's tolerance without
  this node ever seeing it).

Eq. (3) alone is necessary but not sufficient: the paper's Figure 4 shows
a source sequence 1 -> 1.2 -> 1.4 -> 1.5 with ``c_p = 0.3, c_q = 0.5``
where dropping the 1.4 at P makes Q miss the 1.5 forever.  Eq. (7)
forwards the 1.4 and restores 100% fidelity under zero delays.

Note that at the source ``c_p = 0`` and Eq. (7) degenerates to Eq. (3).
"""

from __future__ import annotations

from repro.errors import DisseminationError
from repro.core.dissemination.base import (
    DisseminationPolicy,
    ForwardDecision,
    SourceDecision,
)
from repro.core.dissemination.filtering import forward_distributed

__all__ = ["DistributedPolicy", "should_forward_distributed"]

#: The pure Eq. (3)-or-Eq. (7) test.  Lives in
#: :mod:`repro.core.dissemination.filtering` so the live repository
#: servers share the exact code path; re-exported here under its
#: historical name.
should_forward_distributed = forward_distributed


class DistributedPolicy(DisseminationPolicy):
    """Repository-based dissemination: Eq. (3) + Eq. (7)."""

    name = "distributed"

    def __init__(self) -> None:
        # (parent, child, item) -> last value forwarded over that edge.
        self._last_sent: dict[tuple[int, int, int], float] = {}
        self._c_serve: dict[tuple[int, int, int], float] = {}

    def register_edge(
        self, parent: int, child: int, item_id: int, c_serve: float, initial_value: float
    ) -> None:
        key = (parent, child, item_id)
        self._last_sent[key] = initial_value
        self._c_serve[key] = c_serve

    def unregister_edge(self, parent: int, child: int, item_id: int) -> None:
        key = (parent, child, item_id)
        self._last_sent.pop(key, None)
        self._c_serve.pop(key, None)

    def at_source(self, item_id: int, value: float) -> SourceDecision:
        # The distributed policy has no source-global state: the source
        # treats its dependents exactly like any repository does.
        return SourceDecision(disseminate=True, tag=None, checks=0)

    def decide(
        self,
        parent: int,
        child: int,
        item_id: int,
        value: float,
        parent_receive_c: float,
        tag: float | None,
    ) -> ForwardDecision:
        key = (parent, child, item_id)
        try:
            last_sent = self._last_sent[key]
        except KeyError:
            raise DisseminationError(
                f"edge {parent}->{child} for item {item_id} was never registered"
            ) from None
        forward = should_forward_distributed(
            value, last_sent, self._c_serve[key], parent_receive_c
        )
        if forward:
            self._last_sent[key] = value
        return ForwardDecision(forward=forward)

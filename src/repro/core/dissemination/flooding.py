"""The "all updates" baseline (Figure 8).

Every distinct source value is pushed to every repository interested in
the item, ignoring coherency tolerances.  The paper emulates this with a
maximally stringent tolerance (its T=100% curve); we implement it
directly.  Filtering's benefit (Figure 8) is the gap between this policy
and the coherency-aware ones: flooding wastes network and computational
resources, and the induced queueing *reduces* fidelity.
"""

from __future__ import annotations

from repro.core.dissemination.base import (
    DisseminationPolicy,
    ForwardDecision,
    SourceDecision,
)
from repro.core.dissemination.filtering import forward_flooding

__all__ = ["FloodingPolicy"]


class FloodingPolicy(DisseminationPolicy):
    """Push every update to every interested dependent."""

    name = "flooding"

    def __init__(self) -> None:
        self._edges: set[tuple[int, int, int]] = set()
        self._last_value: dict[tuple[int, int, int], float] = {}

    def register_edge(
        self, parent: int, child: int, item_id: int, c_serve: float, initial_value: float
    ) -> None:
        key = (parent, child, item_id)
        self._edges.add(key)
        self._last_value[key] = initial_value

    def unregister_edge(self, parent: int, child: int, item_id: int) -> None:
        key = (parent, child, item_id)
        self._edges.discard(key)
        self._last_value.pop(key, None)

    def at_source(self, item_id: int, value: float) -> SourceDecision:
        return SourceDecision(disseminate=True, tag=None, checks=0)

    def decide(
        self,
        parent: int,
        child: int,
        item_id: int,
        value: float,
        parent_receive_c: float,
        tag: float | None,
    ) -> ForwardDecision:
        key = (parent, child, item_id)
        # Identical consecutive values carry no information even for
        # flooding (the paper's traces are *changes*); skip pure repeats.
        if not forward_flooding(value, self._last_value.get(key)):
            return ForwardDecision(forward=False)
        self._last_value[key] = value
        return ForwardDecision(forward=True)

"""Update-dissemination policies (Section 5).

A policy decides, for every update flowing through a node, which of the
node's dependents must receive it.  Implemented policies:

- :class:`~repro.core.dissemination.distributed.DistributedPolicy` --
  the repository-based approach: Eq. (3) plus the Eq. (7) missed-updates
  guard; 100% fidelity under zero delays.
- :class:`~repro.core.dissemination.centralized.CentralizedPolicy` --
  the source-based approach: the source tags each update with the
  largest violated coherency tolerance; also 100% fidelity under zero
  delays, at the cost of more source-side checks.
- :class:`~repro.core.dissemination.flooding.FloodingPolicy` -- pushes
  every update to every interested dependent (the paper's "all updates"
  baseline, Figure 8).
- :class:`~repro.core.dissemination.eq3only.Eq3OnlyPolicy` -- Eq. (3)
  alone; provably insufficient (the Figure 4 missed-update scenario).
"""

from repro.core.dissemination.base import DisseminationPolicy, ForwardDecision
from repro.core.dissemination.centralized import CentralizedPolicy
from repro.core.dissemination.distributed import DistributedPolicy
from repro.core.dissemination.eq3only import Eq3OnlyPolicy
from repro.core.dissemination.filtering import EdgeFilter, SourceTagger
from repro.core.dissemination.flooding import FloodingPolicy
from repro.core.dissemination.registry import available_policies, make_policy

__all__ = [
    "DisseminationPolicy",
    "ForwardDecision",
    "DistributedPolicy",
    "CentralizedPolicy",
    "FloodingPolicy",
    "Eq3OnlyPolicy",
    "EdgeFilter",
    "SourceTagger",
    "make_policy",
    "available_policies",
]

"""Policy registry: build a fresh policy instance by name."""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.core.dissemination.base import DisseminationPolicy
from repro.core.dissemination.centralized import CentralizedPolicy
from repro.core.dissemination.distributed import DistributedPolicy
from repro.core.dissemination.eq3only import Eq3OnlyPolicy
from repro.core.dissemination.flooding import FloodingPolicy

__all__ = ["make_policy", "available_policies"]

_FACTORIES: dict[str, Callable[[], DisseminationPolicy]] = {
    DistributedPolicy.name: DistributedPolicy,
    CentralizedPolicy.name: CentralizedPolicy,
    FloodingPolicy.name: FloodingPolicy,
    Eq3OnlyPolicy.name: Eq3OnlyPolicy,
}


def available_policies() -> list[str]:
    """Names accepted by :func:`make_policy`."""
    return sorted(_FACTORIES)


def make_policy(name: str) -> DisseminationPolicy:
    """Instantiate a dissemination policy by registry name.

    Raises:
        ConfigurationError: on an unknown policy name.
    """
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown dissemination policy {name!r}; "
            f"choose from {available_policies()}"
        ) from None
    return factory()

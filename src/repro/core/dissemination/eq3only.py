"""Eq. (3) without the Eq. (7) guard -- the provably insufficient policy.

Section 5 shows that forwarding only when the dependent's own tolerance
is violated (Eq. 3) lets intermediate repositories swallow updates their
dependents will later need: the "missed updates" problem of Figure 4.
This policy exists so the reproduction can *demonstrate* that failure --
tests drive the Figure 4 scenario through it and observe the permanently
stale dependent, and property tests show it fails the 100%-fidelity
theorem that the full distributed policy satisfies.
"""

from __future__ import annotations

from repro.errors import DisseminationError
from repro.core.dissemination.base import (
    DisseminationPolicy,
    ForwardDecision,
    SourceDecision,
)
from repro.core.dissemination.filtering import forward_eq3_only

__all__ = ["Eq3OnlyPolicy"]


class Eq3OnlyPolicy(DisseminationPolicy):
    """Forward only on Eq. (3): ``|v - last_sent| > c_serve``."""

    name = "eq3_only"

    def __init__(self) -> None:
        self._last_sent: dict[tuple[int, int, int], float] = {}
        self._c_serve: dict[tuple[int, int, int], float] = {}

    def register_edge(
        self, parent: int, child: int, item_id: int, c_serve: float, initial_value: float
    ) -> None:
        key = (parent, child, item_id)
        self._last_sent[key] = initial_value
        self._c_serve[key] = c_serve

    def unregister_edge(self, parent: int, child: int, item_id: int) -> None:
        key = (parent, child, item_id)
        self._last_sent.pop(key, None)
        self._c_serve.pop(key, None)

    def at_source(self, item_id: int, value: float) -> SourceDecision:
        return SourceDecision(disseminate=True, tag=None, checks=0)

    def decide(
        self,
        parent: int,
        child: int,
        item_id: int,
        value: float,
        parent_receive_c: float,
        tag: float | None,
    ) -> ForwardDecision:
        key = (parent, child, item_id)
        try:
            last_sent = self._last_sent[key]
        except KeyError:
            raise DisseminationError(
                f"edge {parent}->{child} for item {item_id} was never registered"
            ) from None
        forward = forward_eq3_only(value, last_sent, self._c_serve[key])
        if forward:
            self._last_sent[key] = value
        return ForwardDecision(forward=forward)

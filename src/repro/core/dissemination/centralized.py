"""The centralised (source-based) dissemination policy (Section 5.2).

The source maintains the list of all *unique* coherency tolerances that
exist for each item anywhere in the repository network, together with the
last value disseminated for each tolerance.  On a fresh update it checks
every unique tolerance (these checks are the Figure 11(a) overhead),
finds the violated ones, tags the update with the *largest* violated
tolerance ``c_max``, records the value as last-sent for every tolerance
``<= c_max``, and pushes the tagged update into the tree.

A repository receiving a tagged update forwards it to each dependent that
(i) is interested in the item and (ii) has a serving coherency ``<=`` the
tag.  Because Eq. (1) makes coherencies non-increasing in stringency
toward the leaves, the tag cleanly prunes whole subtrees.
"""

from __future__ import annotations

from repro.errors import DisseminationError
from repro.core.dissemination.base import (
    DisseminationPolicy,
    ForwardDecision,
    SourceDecision,
)

__all__ = ["CentralizedPolicy", "tag_for_update"]

_TOLERANCE_QUANTUM = 1e-9


def tag_for_update(
    value: float, unique_cs: list[float], last_sent: dict[float, float]
) -> float | None:
    """Return the largest violated tolerance, or None if none is violated.

    Exposed for direct unit testing; mutates nothing.
    """
    tag: float | None = None
    for c in unique_cs:
        if abs(value - last_sent[c]) > c:
            if tag is None or c > tag:
                tag = c
    return tag


class CentralizedPolicy(DisseminationPolicy):
    """Source-based dissemination with tolerance tagging."""

    name = "centralized"

    def __init__(self) -> None:
        # item -> sorted list of unique serving tolerances in the system.
        self._unique_cs: dict[int, list[float]] = {}
        # item -> {tolerance -> last value disseminated for it}.
        self._last_sent: dict[int, dict[float, float]] = {}
        self._initial: dict[int, float] = {}
        self._edge_c: dict[tuple[int, int, int], float] = {}

    @staticmethod
    def _quantise(c: float) -> float:
        """Collapse float noise so 'unique tolerance' is well defined."""
        return round(c, 9)

    def register_edge(
        self, parent: int, child: int, item_id: int, c_serve: float, initial_value: float
    ) -> None:
        c = self._quantise(c_serve)
        self._edge_c[(parent, child, item_id)] = c
        cs = self._unique_cs.setdefault(item_id, [])
        sent = self._last_sent.setdefault(item_id, {})
        if c not in sent:
            cs.append(c)
            cs.sort()
            sent[c] = initial_value
        self._initial.setdefault(item_id, initial_value)

    def unregister_edge(self, parent: int, child: int, item_id: int) -> None:
        c = self._edge_c.pop((parent, child, item_id), None)
        if c is None:
            return
        # Drop the tolerance from the source's unique list only when no
        # remaining edge for the item still serves at it -- the source
        # tracks tolerances that exist *anywhere* in the network.
        still_served = any(
            cc == c
            for (_p, _ch, it), cc in self._edge_c.items()
            if it == item_id
        )
        if not still_served:
            cs = self._unique_cs.get(item_id)
            if cs is not None and c in cs:
                cs.remove(c)
            sent = self._last_sent.get(item_id)
            if sent is not None:
                sent.pop(c, None)

    def unique_tolerances(self, item_id: int) -> list[float]:
        """The source's per-item state (ascending unique tolerances)."""
        return list(self._unique_cs.get(item_id, []))

    def at_source(self, item_id: int, value: float) -> SourceDecision:
        cs = self._unique_cs.get(item_id)
        if not cs:
            return SourceDecision(disseminate=False, tag=None, checks=0)
        sent = self._last_sent[item_id]
        tag = tag_for_update(value, cs, sent)
        checks = len(cs)
        if tag is None:
            return SourceDecision(disseminate=False, tag=None, checks=checks)
        for c in cs:
            if c <= tag:
                sent[c] = value
            else:
                break
        return SourceDecision(disseminate=True, tag=tag, checks=checks)

    def decide(
        self,
        parent: int,
        child: int,
        item_id: int,
        value: float,
        parent_receive_c: float,
        tag: float | None,
    ) -> ForwardDecision:
        if tag is None:
            raise DisseminationError(
                "centralised dissemination requires a source tag on every update"
            )
        try:
            c_serve = self._edge_c[(parent, child, item_id)]
        except KeyError:
            raise DisseminationError(
                f"edge {parent}->{child} for item {item_id} was never registered"
            ) from None
        return ForwardDecision(forward=c_serve <= tag)

"""The centralised (source-based) dissemination policy (Section 5.2).

The source maintains the list of all *unique* coherency tolerances that
exist for each item anywhere in the repository network, together with the
last value disseminated for each tolerance.  On a fresh update it checks
every unique tolerance (these checks are the Figure 11(a) overhead),
finds the violated ones, tags the update with the *largest* violated
tolerance ``c_max``, records the value as last-sent for every tolerance
``<= c_max``, and pushes the tagged update into the tree.

A repository receiving a tagged update forwards it to each dependent that
(i) is interested in the item and (ii) has a serving coherency ``<=`` the
tag.  Because Eq. (1) makes coherencies non-increasing in stringency
toward the leaves, the tag cleanly prunes whole subtrees.

The source-side state machine lives in
:class:`~repro.core.dissemination.filtering.SourceTagger` and the tag
pruning test in :func:`~repro.core.dissemination.filtering.
forward_centralized`, shared verbatim with the live
:class:`~repro.live.nodes.SourceNode` / repository servers.
"""

from __future__ import annotations

from repro.errors import DisseminationError
from repro.core.dissemination.base import (
    DisseminationPolicy,
    ForwardDecision,
    SourceDecision,
)
from repro.core.dissemination.filtering import (
    SourceTagger,
    forward_centralized,
    quantise_tolerance,
)
from repro.core.dissemination.filtering import tag_for_update  # noqa: F401  (re-export)

__all__ = ["CentralizedPolicy", "tag_for_update"]


class CentralizedPolicy(DisseminationPolicy):
    """Source-based dissemination with tolerance tagging."""

    name = "centralized"

    def __init__(self) -> None:
        self._tagger = SourceTagger()
        self._edge_c: dict[tuple[int, int, int], float] = {}

    def register_edge(
        self, parent: int, child: int, item_id: int, c_serve: float, initial_value: float
    ) -> None:
        c = quantise_tolerance(c_serve)
        self._edge_c[(parent, child, item_id)] = c
        self._tagger.add_tolerance(item_id, c, initial_value)

    def unregister_edge(self, parent: int, child: int, item_id: int) -> None:
        c = self._edge_c.pop((parent, child, item_id), None)
        if c is None:
            return
        # Drop the tolerance from the source's unique list only when no
        # remaining edge for the item still serves at it -- the source
        # tracks tolerances that exist *anywhere* in the network.
        still_served = any(
            cc == c
            for (_p, _ch, it), cc in self._edge_c.items()
            if it == item_id
        )
        if not still_served:
            self._tagger.remove_tolerance(item_id, c)

    def unique_tolerances(self, item_id: int) -> list[float]:
        """The source's per-item state (ascending unique tolerances)."""
        return self._tagger.unique_tolerances(item_id)

    def at_source(self, item_id: int, value: float) -> SourceDecision:
        return self._tagger.examine(item_id, value)

    def decide(
        self,
        parent: int,
        child: int,
        item_id: int,
        value: float,
        parent_receive_c: float,
        tag: float | None,
    ) -> ForwardDecision:
        if tag is None:
            raise DisseminationError(
                "centralised dissemination requires a source tag on every update"
            )
        try:
            c_serve = self._edge_c[(parent, child, item_id)]
        except KeyError:
            raise DisseminationError(
                f"edge {parent}->{child} for item {item_id} was never registered"
            ) from None
        return ForwardDecision(forward=forward_centralized(c_serve, tag))

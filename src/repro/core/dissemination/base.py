"""Policy interface shared by all dissemination algorithms.

The engine drives a policy with two hooks:

- :meth:`DisseminationPolicy.at_source` runs once per source update and
  may veto dissemination entirely (the centralised policy's tagging);
- :meth:`DisseminationPolicy.decide` runs per (node, dependent) pair and
  answers "does this dependent need this update?".

Updates carry an opaque ``tag`` produced at the source (``None`` for
policies that do not use one); the engine threads it through unchanged
as the update flows down the tree -- mirroring how the paper's
centralised approach piggybacks the maximum violated tolerance on the
message.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

__all__ = ["ForwardDecision", "SourceDecision", "DisseminationPolicy"]


@dataclass(frozen=True)
class SourceDecision:
    """Outcome of the source-side examination of one update.

    Attributes:
        disseminate: When false the update is dropped at the source
            (no dependent can need it).
        tag: Opaque value forwarded with the update (the centralised
            policy's maximum violated tolerance).
        checks: Number of source-side checks this examination cost;
            feeds the Figure 11(a) metric.
    """

    disseminate: bool
    tag: float | None = None
    checks: int = 0


@dataclass(frozen=True)
class ForwardDecision:
    """Outcome of one (node, dependent) coherency check."""

    forward: bool
    checks: int = 1


class DisseminationPolicy(ABC):
    """Decides which dependents receive which updates."""

    #: Registry name; subclasses override.
    name: str = "abstract"

    @abstractmethod
    def register_edge(
        self, parent: int, child: int, item_id: int, c_serve: float, initial_value: float
    ) -> None:
        """Declare one service edge of the ``d3g`` before simulation.

        Args:
            parent: Serving node.
            child: Dependent node.
            item_id: Item flowing over the edge.
            c_serve: Coherency the child must be kept within (its
                receive coherency for the item).
            initial_value: Priming value; every copy in the system starts
                coherent at this value.
        """

    def unregister_edge(self, parent: int, child: int, item_id: int) -> None:
        """Tear down one service edge at reconfiguration time (churn).

        The engine calls this when a mid-run membership change removes
        an edge from the dissemination graph; the policy must forget any
        per-edge state so the edge can later be re-registered (possibly
        at a different coherency) without leaking the old subscription.
        Unknown edges are ignored (idempotent teardown).

        Policies that do not support live reconfiguration may keep this
        default, which refuses loudly rather than silently corrupting
        per-edge state.
        """
        raise NotImplementedError(
            f"policy {self.name!r} does not support churn reconfiguration"
        )

    @abstractmethod
    def at_source(self, item_id: int, value: float) -> SourceDecision:
        """Examine a fresh source update before any dissemination."""

    @abstractmethod
    def decide(
        self,
        parent: int,
        child: int,
        item_id: int,
        value: float,
        parent_receive_c: float,
        tag: float | None,
    ) -> ForwardDecision:
        """Does ``child`` need ``value``, given it last got what we sent it?

        Args:
            parent: Node holding the update.
            child: Candidate dependent.
            item_id: The item.
            value: The update's value.
            parent_receive_c: Coherency at which ``parent`` itself
                receives the item (0 at the source) -- the ``c_p`` of
                Eq. (7).
            tag: The source tag threaded with this update.
        """

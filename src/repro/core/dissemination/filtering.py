"""The pure per-edge forwarding decisions, shared by sim and live code.

Every dissemination policy ultimately answers one question per
(update, service edge): *should this update be forwarded to dependent
R for item x?*  The four :class:`~repro.core.dissemination.base.
DisseminationPolicy` subclasses each used to inline their own copy of
that test; this module hoists the decisions into pure functions so that

- the simulation policies (:mod:`repro.core.dissemination.distributed`
  and friends) and
- the live repository servers (:mod:`repro.live.nodes`)

share **one** code path, and the simulator can be cross-validated
against a running network (the ``live_crosscheck`` experiment) without
any risk of the two re-implementing the paper's equations differently.

Three layers:

- the pure functions (:func:`forward_distributed`, :func:`forward_eq3_only`,
  :func:`forward_flooding`, :func:`forward_centralized`,
  :func:`tag_for_update`) -- stateless, trivially property-testable;
- :class:`EdgeFilter` -- one edge's decision plus its per-edge state
  (``last_sent``), dispatching to the pure functions by policy name;
- :class:`SourceTagger` -- the centralised policy's source-side
  examination (unique-tolerance list, per-tolerance last-sent values,
  Figure 11(a) check counting).
"""

from __future__ import annotations

from repro.core.dissemination.base import SourceDecision
from repro.errors import ConfigurationError, DisseminationError

__all__ = [
    "quantise_tolerance",
    "forward_distributed",
    "forward_eq3_only",
    "forward_flooding",
    "forward_centralized",
    "tag_for_update",
    "EdgeFilter",
    "SourceTagger",
    "FILTERED_POLICIES",
]

#: Policy names :class:`EdgeFilter` understands (the push policies).
FILTERED_POLICIES = ("distributed", "centralized", "flooding", "eq3_only")

_TOLERANCE_DECIMALS = 9


def quantise_tolerance(c: float) -> float:
    """Collapse float noise so 'unique tolerance' is well defined.

    The centralised policy groups edges by their serving tolerance; two
    tolerances that differ only in float dust must land in one bucket.
    """
    return round(c, _TOLERANCE_DECIMALS)


def forward_distributed(
    value: float, last_sent: float, c_serve: float, parent_receive_c: float
) -> bool:
    """The distributed policy's Eq. (3)-or-Eq. (7) test.

    Forward when the dependent's tolerance is already violated
    (Eq. 3: ``|v - last_sent| > c_serve``) or its remaining slack has
    shrunk below the coherency at which this node itself receives the
    item (Eq. 7: ``c_serve - |v - last_sent| < parent_receive_c``), so
    the *next* update could violate the dependent's tolerance without
    this node ever seeing it.
    """
    deviation = abs(value - last_sent)
    if deviation > c_serve:  # Eq. (3)
        return True
    return c_serve - deviation < parent_receive_c  # Eq. (7)


def forward_eq3_only(value: float, last_sent: float, c_serve: float) -> bool:
    """Eq. (3) alone -- provably insufficient (the Figure 4 failure)."""
    return abs(value - last_sent) > c_serve


def forward_flooding(value: float, last_value: float) -> bool:
    """Forward every *distinct* value (repeats carry no information)."""
    return value != last_value


def forward_centralized(c_serve: float, tag: float) -> bool:
    """Tag pruning: forward when the edge's tolerance is covered by the
    source's maximum-violated-tolerance tag (``c_serve <= tag``)."""
    return c_serve <= tag


def tag_for_update(
    value: float, unique_cs: list[float], last_sent: dict[float, float]
) -> float | None:
    """Return the largest violated tolerance, or None if none is violated.

    The centralised policy's source-side tagging rule; mutates nothing.
    """
    tag: float | None = None
    for c in unique_cs:
        if abs(value - last_sent[c]) > c:
            if tag is None or c > tag:
                tag = c
    return tag


class EdgeFilter:
    """One service edge's forwarding decision plus its per-edge state.

    The live :class:`~repro.live.nodes.RepositoryNode` keeps one filter
    per (dependent, item); the sim policies keep equivalent state in
    bulk dictionaries but route every decision through the same pure
    functions, so the two planes cannot drift apart.
    """

    __slots__ = ("policy", "c_serve", "last_sent")

    def __init__(self, policy: str, c_serve: float, initial_value: float) -> None:
        if policy not in FILTERED_POLICIES:
            raise ConfigurationError(
                f"unknown edge-filter policy {policy!r}; "
                f"choose from {list(FILTERED_POLICIES)}"
            )
        self.policy = policy
        self.c_serve = (
            quantise_tolerance(c_serve) if policy == "centralized" else c_serve
        )
        self.last_sent = initial_value

    def decide(
        self, value: float, parent_receive_c: float = 0.0, tag: float | None = None
    ) -> bool:
        """Should this value be forwarded over the edge?

        Mirrors :meth:`DisseminationPolicy.decide` for a single edge,
        including the state update on a positive decision.

        Raises:
            DisseminationError: for a centralised decision without a tag
                (every centralised update must carry one).
        """
        if self.policy == "distributed":
            forward = forward_distributed(
                value, self.last_sent, self.c_serve, parent_receive_c
            )
        elif self.policy == "eq3_only":
            forward = forward_eq3_only(value, self.last_sent, self.c_serve)
        elif self.policy == "flooding":
            forward = forward_flooding(value, self.last_sent)
        else:  # centralized
            if tag is None:
                raise DisseminationError(
                    "centralised dissemination requires a source tag on every update"
                )
            forward = forward_centralized(self.c_serve, tag)
        if forward:
            self.last_sent = value
        return forward


class SourceTagger:
    """The centralised policy's source-side state and examination.

    Tracks, per item, the sorted list of unique serving tolerances that
    exist *anywhere* in the repository network and the last value
    disseminated for each.  :meth:`examine` implements Section 5.2's
    source algorithm: check every unique tolerance (the Figure 11(a)
    overhead), tag the update with the largest violated one, and mark
    the value as sent for every tolerance the tag covers.

    Shared by :class:`~repro.core.dissemination.centralized.
    CentralizedPolicy` (which feeds it from ``register_edge``) and the
    live :class:`~repro.live.nodes.SourceNode` (which feeds it from the
    LeLA-built ``d3g``).
    """

    def __init__(self) -> None:
        # item -> sorted list of unique serving tolerances in the system.
        self._unique_cs: dict[int, list[float]] = {}
        # item -> {tolerance -> last value disseminated for it}.
        self._last_sent: dict[int, dict[float, float]] = {}

    def add_tolerance(self, item_id: int, c: float, initial_value: float) -> None:
        """Declare that somewhere in the network ``item_id`` is served at
        (quantised) tolerance ``c``.  Idempotent per (item, tolerance)."""
        c = quantise_tolerance(c)
        cs = self._unique_cs.setdefault(item_id, [])
        sent = self._last_sent.setdefault(item_id, {})
        if c not in sent:
            cs.append(c)
            cs.sort()
            sent[c] = initial_value

    def remove_tolerance(self, item_id: int, c: float) -> None:
        """Forget one (item, tolerance) pair -- the caller has verified no
        remaining edge serves the item at it.  Idempotent."""
        c = quantise_tolerance(c)
        cs = self._unique_cs.get(item_id)
        if cs is not None and c in cs:
            cs.remove(c)
        sent = self._last_sent.get(item_id)
        if sent is not None:
            sent.pop(c, None)

    def unique_tolerances(self, item_id: int) -> list[float]:
        """The per-item state: ascending unique tolerances."""
        return list(self._unique_cs.get(item_id, []))

    def examine(self, item_id: int, value: float) -> SourceDecision:
        """Examine one fresh source update (Section 5.2's source step)."""
        cs = self._unique_cs.get(item_id)
        if not cs:
            return SourceDecision(disseminate=False, tag=None, checks=0)
        sent = self._last_sent[item_id]
        tag = tag_for_update(value, cs, sent)
        checks = len(cs)
        if tag is None:
            return SourceDecision(disseminate=False, tag=None, checks=checks)
        for c in cs:
            if c <= tag:
                sent[c] = value
            else:
                break
        return SourceDecision(disseminate=True, tag=tag, checks=checks)

"""The pure per-edge forwarding decisions, shared by sim and live code.

Every dissemination policy ultimately answers one question per
(update, service edge): *should this update be forwarded to dependent
R for item x?*  The four :class:`~repro.core.dissemination.base.
DisseminationPolicy` subclasses each used to inline their own copy of
that test; this module hoists the decisions into pure functions so that

- the simulation policies (:mod:`repro.core.dissemination.distributed`
  and friends) and
- the live repository servers (:mod:`repro.live.nodes`)

share **one** code path, and the simulator can be cross-validated
against a running network (the ``live_crosscheck`` experiment) without
any risk of the two re-implementing the paper's equations differently.

Four layers:

- the pure scalar functions (:func:`forward_distributed`,
  :func:`forward_eq3_only`, :func:`forward_flooding`,
  :func:`forward_centralized`, :func:`tag_for_update`) -- stateless,
  trivially property-testable;
- their vectorised mirrors (:func:`forward_distributed_many` and
  friends, :class:`ArraySourceTagger`) -- evaluate one update against
  *all* dependents of an edge group in one numpy call, elementwise
  bit-identical to the scalar functions; the vectorized kernel
  (:mod:`repro.engine.vectorized`) is built on these;
- :class:`EdgeFilter` -- one edge's decision plus its per-edge state
  (``last_sent``), dispatching to the pure functions by policy name;
- :class:`SourceTagger` -- the centralised policy's source-side
  examination (unique-tolerance list, per-tolerance last-sent values,
  Figure 11(a) check counting).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.dissemination.base import SourceDecision
from repro.errors import ConfigurationError, DisseminationError

__all__ = [
    "MIN_TOLERANCE",
    "quantise_tolerance",
    "validate_tolerance",
    "forward_distributed",
    "forward_eq3_only",
    "forward_flooding",
    "forward_centralized",
    "forward_distributed_many",
    "forward_eq3_only_many",
    "forward_flooding_many",
    "forward_centralized_many",
    "tag_for_update",
    "EdgeFilter",
    "SourceTagger",
    "ArraySourceTagger",
    "FILTERED_POLICIES",
]

#: Policy names :class:`EdgeFilter` understands (the push policies).
FILTERED_POLICIES = ("distributed", "centralized", "flooding", "eq3_only")

_TOLERANCE_DECIMALS = 9

#: Smallest admissible coherency tolerance: one quantisation quantum.
#: :func:`quantise_tolerance` rounds to ``_TOLERANCE_DECIMALS`` decimals,
#: so any positive tolerance below half a quantum (5e-10) silently
#: collapses to ``0.0`` -- and distinct sub-quantum tolerances merge
#: into a single centralised-policy bucket.  Tolerances at or above one
#: full quantum provably survive quantisation (``round`` is monotone and
#: ``round(1e-9, 9) == 1e-9 > 0``), so the build-time validation in
#: :mod:`repro.engine.config` / :mod:`repro.engine.builder` rejects
#: anything smaller.
MIN_TOLERANCE = 10.0 ** -_TOLERANCE_DECIMALS


def quantise_tolerance(c: float) -> float:
    """Collapse float noise so 'unique tolerance' is well defined.

    The centralised policy groups edges by their serving tolerance; two
    tolerances that differ only in float dust must land in one bucket.
    Callers must only pass validated tolerances (``>=``
    :data:`MIN_TOLERANCE`); below that the rounding quantum collapses
    the tolerance to ``0.0`` -- see :func:`validate_tolerance`.
    """
    return round(c, _TOLERANCE_DECIMALS)


def validate_tolerance(c: float, context: str = "tolerance") -> float:
    """Reject non-finite or sub-quantum coherency tolerances.

    Args:
        c: The candidate tolerance.
        context: Prefix for the error message (e.g. which repository and
            item the tolerance belongs to).

    Returns:
        ``c`` unchanged, for call-through convenience.

    Raises:
        ConfigurationError: when ``c`` is NaN/infinite or smaller than
            :data:`MIN_TOLERANCE` (the quantisation quantum), which
            would silently collapse it to ``0.0`` and merge it with
            every other sub-quantum tolerance.
    """
    if not math.isfinite(c):
        raise ConfigurationError(f"{context} must be finite, got {c!r}")
    if c < MIN_TOLERANCE:
        raise ConfigurationError(
            f"{context} must be >= {MIN_TOLERANCE:g} (the quantisation "
            f"quantum; smaller values collapse to 0.0), got {c!r}"
        )
    return c


def forward_distributed(
    value: float, last_sent: float, c_serve: float, parent_receive_c: float
) -> bool:
    """The distributed policy's Eq. (3)-or-Eq. (7) test.

    Forward when the dependent's tolerance is already violated
    (Eq. 3: ``|v - last_sent| > c_serve``) or its remaining slack has
    shrunk below the coherency at which this node itself receives the
    item (Eq. 7: ``c_serve - |v - last_sent| < parent_receive_c``), so
    the *next* update could violate the dependent's tolerance without
    this node ever seeing it.
    """
    deviation = abs(value - last_sent)
    if deviation > c_serve:  # Eq. (3)
        return True
    return c_serve - deviation < parent_receive_c  # Eq. (7)


def forward_eq3_only(value: float, last_sent: float, c_serve: float) -> bool:
    """Eq. (3) alone -- provably insufficient (the Figure 4 failure)."""
    return abs(value - last_sent) > c_serve


def forward_flooding(value: float, last_value: float) -> bool:
    """Forward every *distinct* value (repeats carry no information)."""
    return value != last_value


def forward_centralized(c_serve: float, tag: float) -> bool:
    """Tag pruning: forward when the edge's tolerance is covered by the
    source's maximum-violated-tolerance tag (``c_serve <= tag``)."""
    return c_serve <= tag


def forward_distributed_many(
    value: float,
    last_sent: "np.ndarray",
    c_serve: "np.ndarray",
    parent_receive_c,
) -> "np.ndarray":
    """Vectorised :func:`forward_distributed`: one update vs. N dependents.

    Elementwise bit-identical to the scalar test -- numpy float64
    ``abs``/compare/subtract agree exactly with Python-float arithmetic
    on the same operands.  ``parent_receive_c`` may be a scalar (all
    dependents hang off one serving node) or a parallel array.
    """
    deviation = np.abs(value - last_sent)
    return (deviation > c_serve) | ((c_serve - deviation) < parent_receive_c)


def forward_eq3_only_many(
    value: float, last_sent: "np.ndarray", c_serve: "np.ndarray"
) -> "np.ndarray":
    """Vectorised :func:`forward_eq3_only` (Eq. 3 across all dependents)."""
    return np.abs(value - last_sent) > c_serve


def forward_flooding_many(value: float, last_value: "np.ndarray") -> "np.ndarray":
    """Vectorised :func:`forward_flooding` (distinct-value test)."""
    return last_value != value


def forward_centralized_many(c_serve: "np.ndarray", tag: float) -> "np.ndarray":
    """Vectorised :func:`forward_centralized` (tag cover across edges).

    ``c_serve`` must hold *quantised* tolerances, exactly as
    :class:`EdgeFilter` stores them for the centralised policy.
    """
    return c_serve <= tag


def tag_for_update(
    value: float, unique_cs: list[float], last_sent: dict[float, float]
) -> float | None:
    """Return the largest violated tolerance, or None if none is violated.

    The centralised policy's source-side tagging rule; mutates nothing.
    """
    tag: float | None = None
    for c in unique_cs:
        if abs(value - last_sent[c]) > c:
            if tag is None or c > tag:
                tag = c
    return tag


class EdgeFilter:
    """One service edge's forwarding decision plus its per-edge state.

    The live :class:`~repro.live.nodes.RepositoryNode` keeps one filter
    per (dependent, item); the sim policies keep equivalent state in
    bulk dictionaries but route every decision through the same pure
    functions, so the two planes cannot drift apart.
    """

    __slots__ = ("policy", "c_serve", "last_sent")

    def __init__(self, policy: str, c_serve: float, initial_value: float) -> None:
        if policy not in FILTERED_POLICIES:
            raise ConfigurationError(
                f"unknown edge-filter policy {policy!r}; "
                f"choose from {list(FILTERED_POLICIES)}"
            )
        validate_tolerance(c_serve, "edge serving tolerance")
        self.policy = policy
        self.c_serve = (
            quantise_tolerance(c_serve) if policy == "centralized" else c_serve
        )
        self.last_sent = initial_value

    def decide(
        self, value: float, parent_receive_c: float = 0.0, tag: float | None = None
    ) -> bool:
        """Should this value be forwarded over the edge?

        Mirrors :meth:`DisseminationPolicy.decide` for a single edge,
        including the state update on a positive decision.

        Raises:
            DisseminationError: for a centralised decision without a tag
                (every centralised update must carry one).
        """
        if self.policy == "distributed":
            forward = forward_distributed(
                value, self.last_sent, self.c_serve, parent_receive_c
            )
        elif self.policy == "eq3_only":
            forward = forward_eq3_only(value, self.last_sent, self.c_serve)
        elif self.policy == "flooding":
            forward = forward_flooding(value, self.last_sent)
        else:  # centralized
            if tag is None:
                raise DisseminationError(
                    "centralised dissemination requires a source tag on every update"
                )
            forward = forward_centralized(self.c_serve, tag)
        if forward:
            self.last_sent = value
        return forward


class SourceTagger:
    """The centralised policy's source-side state and examination.

    Tracks, per item, the sorted list of unique serving tolerances that
    exist *anywhere* in the repository network and the last value
    disseminated for each.  :meth:`examine` implements Section 5.2's
    source algorithm: check every unique tolerance (the Figure 11(a)
    overhead), tag the update with the largest violated one, and mark
    the value as sent for every tolerance the tag covers.

    Shared by :class:`~repro.core.dissemination.centralized.
    CentralizedPolicy` (which feeds it from ``register_edge``) and the
    live :class:`~repro.live.nodes.SourceNode` (which feeds it from the
    LeLA-built ``d3g``).
    """

    def __init__(self) -> None:
        # item -> sorted list of unique serving tolerances in the system.
        self._unique_cs: dict[int, list[float]] = {}
        # item -> {tolerance -> last value disseminated for it}.
        self._last_sent: dict[int, dict[float, float]] = {}

    def add_tolerance(self, item_id: int, c: float, initial_value: float) -> None:
        """Declare that somewhere in the network ``item_id`` is served at
        (quantised) tolerance ``c``.  Idempotent per (item, tolerance)."""
        validate_tolerance(c, "source-tagger tolerance")
        c = quantise_tolerance(c)
        cs = self._unique_cs.setdefault(item_id, [])
        sent = self._last_sent.setdefault(item_id, {})
        if c not in sent:
            cs.append(c)
            cs.sort()
            sent[c] = initial_value

    def remove_tolerance(self, item_id: int, c: float) -> None:
        """Forget one (item, tolerance) pair -- the caller has verified no
        remaining edge serves the item at it.  Idempotent."""
        c = quantise_tolerance(c)
        cs = self._unique_cs.get(item_id)
        if cs is not None and c in cs:
            cs.remove(c)
        sent = self._last_sent.get(item_id)
        if sent is not None:
            sent.pop(c, None)

    def unique_tolerances(self, item_id: int) -> list[float]:
        """The per-item state: ascending unique tolerances."""
        return list(self._unique_cs.get(item_id, []))

    def examine(self, item_id: int, value: float) -> SourceDecision:
        """Examine one fresh source update (Section 5.2's source step)."""
        cs = self._unique_cs.get(item_id)
        if not cs:
            return SourceDecision(disseminate=False, tag=None, checks=0)
        sent = self._last_sent[item_id]
        tag = tag_for_update(value, cs, sent)
        checks = len(cs)
        if tag is None:
            return SourceDecision(disseminate=False, tag=None, checks=checks)
        for c in cs:
            if c <= tag:
                sent[c] = value
            else:
                break
        return SourceDecision(disseminate=True, tag=tag, checks=checks)


class ArraySourceTagger:
    """Array-backed mirror of :class:`SourceTagger` for the vectorized kernel.

    Keeps, per item, the ascending unique-tolerance array and a parallel
    last-sent array, and examines a fresh update with three numpy ops
    instead of a Python loop over tolerances.  Bit-identical to
    :meth:`SourceTagger.examine`: the tag is the largest violated
    tolerance (the last violated entry of an ascending array) and the
    value is marked sent for every tolerance the tag covers.

    The population step builds it once from the scalar policy's
    registered state (:meth:`~repro.core.dissemination.centralized.
    CentralizedPolicy.unique_tolerances`), keeping the scalar path the
    single source of truth for what exists in the network;
    :meth:`add_tolerance` / :meth:`remove_tolerance` exist only so
    failure-driven reconfigurations (backup-parent failover) can replay
    the scalar :class:`SourceTagger`'s add/remove transitions exactly.
    """

    def __init__(self) -> None:
        # item -> (ascending quantised tolerances, parallel last-sent values)
        self._state: dict[int, tuple["np.ndarray", "np.ndarray"]] = {}

    def add_item(
        self, item_id: int, unique_cs: list[float], initial_value: float
    ) -> None:
        """Install one item's ascending unique-tolerance list."""
        cs = np.asarray(unique_cs, dtype=np.float64)
        if cs.size and np.any(np.diff(cs) <= 0):
            raise DisseminationError(
                f"unique tolerances for item {item_id} must be strictly ascending"
            )
        self._state[item_id] = (cs, np.full(cs.size, initial_value))

    def add_tolerance(self, item_id: int, c: float, initial_value: float) -> None:
        """Insert one (quantised) tolerance; idempotent, like
        :meth:`SourceTagger.add_tolerance` (an existing entry keeps its
        last-sent value)."""
        c = quantise_tolerance(c)
        cs, sent = self._state.get(
            item_id, (np.empty(0, dtype=np.float64), np.empty(0))
        )
        idx = int(np.searchsorted(cs, c))
        if idx < cs.size and cs[idx] == c:
            return
        self._state[item_id] = (
            np.insert(cs, idx, c),
            np.insert(sent, idx, initial_value),
        )

    def remove_tolerance(self, item_id: int, c: float) -> None:
        """Forget one (item, tolerance) pair; idempotent, like
        :meth:`SourceTagger.remove_tolerance`."""
        c = quantise_tolerance(c)
        state = self._state.get(item_id)
        if state is None:
            return
        cs, sent = state
        hits = np.nonzero(cs == c)[0]
        if hits.size:
            i = int(hits[0])
            self._state[item_id] = (np.delete(cs, i), np.delete(sent, i))

    def examine(self, item_id: int, value: float) -> SourceDecision:
        """Vectorised :meth:`SourceTagger.examine` (Section 5.2 source step)."""
        state = self._state.get(item_id)
        if state is None or not state[0].size:
            return SourceDecision(disseminate=False, tag=None, checks=0)
        cs, sent = state
        checks = int(cs.size)
        violated = np.abs(value - sent) > cs
        hits = np.nonzero(violated)[0]
        if not hits.size:
            return SourceDecision(disseminate=False, tag=None, checks=checks)
        tag = float(cs[hits[-1]])
        sent[cs <= tag] = value
        return SourceDecision(disseminate=True, tag=tag, checks=checks)

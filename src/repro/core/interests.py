"""Per-repository interest profiles.

Section 6.1: each repository requests a subset of the data items, picking
each item independently with 50% probability, and draws a coherency
tolerance for every picked item from the T% stringent / lax mix.

A repository's *own* requirement is what its users need and what fidelity
is measured against; LeLA may later tighten the coherency at which the
repository actually *receives* an item to serve its dependents
(Section 4's cascading augmentation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.core.items import CoherencyMix, DataItem

__all__ = ["InterestProfile", "generate_interests"]


@dataclass
class InterestProfile:
    """What one repository wants: items and their coherency tolerances.

    Attributes:
        repository: Node id of the repository.
        requirements: Mapping ``item_id -> c`` (the user-level tolerance).
    """

    repository: int
    requirements: dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for item_id, c in self.requirements.items():
            if c <= 0:
                raise ConfigurationError(
                    f"repository {self.repository}: tolerance for item "
                    f"{item_id} must be positive, got {c!r}"
                )

    @property
    def items(self) -> list[int]:
        """Sorted ids of the items this repository stores."""
        return sorted(self.requirements)

    def __len__(self) -> int:
        return len(self.requirements)

    def __contains__(self, item_id: int) -> bool:
        return item_id in self.requirements

    def tolerance(self, item_id: int) -> float:
        """The repository's own tolerance for ``item_id``."""
        return self.requirements[item_id]

    def most_stringent(self) -> float | None:
        """The tightest tolerance across all items (None if empty)."""
        return min(self.requirements.values()) if self.requirements else None


def generate_interests(
    repositories: list[int],
    items: list[DataItem],
    mix: CoherencyMix,
    rng: np.random.Generator,
    subscription_probability: float = 0.5,
    ensure_nonempty: bool = True,
) -> dict[int, InterestProfile]:
    """Generate the paper's interest model for every repository.

    Args:
        repositories: Repository node ids.
        items: The data-item universe.
        mix: Stringent/lax tolerance mix (parameterised by T%).
        rng: Random stream.
        subscription_probability: Probability a repository wants a given
            item (paper: 0.5).
        ensure_nonempty: Give a repository that drew no items one random
            item, so every repository participates (a repository with no
            interests would be unreachable by construction).

    Returns:
        Mapping ``repository id -> InterestProfile``.
    """
    if not 0.0 < subscription_probability <= 1.0:
        raise ConfigurationError(
            "subscription_probability must be in (0, 1], "
            f"got {subscription_probability!r}"
        )
    if not items:
        raise ConfigurationError("need at least one data item")

    profiles: dict[int, InterestProfile] = {}
    item_ids = np.array([item.item_id for item in items])
    for repo in repositories:
        wanted = item_ids[rng.random(len(item_ids)) < subscription_probability]
        if wanted.size == 0 and ensure_nonempty:
            wanted = np.array([rng.choice(item_ids)])
        tolerances = mix.draw(wanted.size, rng)
        profiles[repo] = InterestProfile(
            repository=repo,
            requirements={int(i): float(c) for i, c in zip(wanted, tolerances)},
        )
    return profiles

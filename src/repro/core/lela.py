"""LeLA -- the Level-by-Level Algorithm (Section 4).

LeLA inserts repositories one at a time into the dissemination graph.
For a newcomer ``q`` it scans levels starting at the source (level 0);
the *load controller* of each level ranks that level's repositories by a
preference factor and admits every candidate within ``P%`` (default 5%)
of the minimum.  The candidates split ``q``'s item list among themselves
(most preferred first); items none of them can serve are assigned to the
most preferred candidate anyway, which *augments* its own subscriptions --
recursively, up to the source -- to acquire them at the stringency ``q``
needs (the paper's cascading effect).

A repository is a viable candidate only while it has spare *push
connections*: one per child, regardless of how many items flow to that
child.  When a whole level is out of capacity the request passes to the
next level's load controller.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TreeConstructionError
from repro.core.interests import InterestProfile
from repro.core.preference import PreferenceFunction, preference_p1
from repro.core.tree import DisseminationGraph

__all__ = ["LelaBuilder", "build_d3g", "reoptimize_d3g"]


@dataclass
class _Candidate:
    """A capacity-bearing repository considered as a parent."""

    node: int
    preference: float
    serveable: set[int]


class LelaBuilder:
    """Incrementally constructs a :class:`DisseminationGraph` with LeLA.

    Args:
        source: Node id of the data source.
        comm_delay_ms: Callable ``(u, v) -> ms`` giving the communication
            delay between two logical nodes (use
            :meth:`repro.network.model.NetworkModel.delay_ms`).
        offered_degree: ``node -> max push connections``; the degree of
            cooperation each node offers (the source included).
        preference: Preference factor; defaults to the paper's P1.
        p_percent: Admission band -- candidates within this percentage of
            the minimum preference become parents (paper default 5%).
        rng: Random stream used when augmentation must pick among a
            node's existing parents (the paper picks randomly).
        node_load: Optional observed-load weights, ``node -> load >= 0``.
            A candidate's preference is scaled by ``1 + load`` before the
            level ranking, so hot nodes (as measured by a running kernel)
            are demoted and drift-driven re-optimization steers newcomers
            away from them.  Empty/absent loads reproduce plain LeLA
            bit-exactly.
    """

    def __init__(
        self,
        source: int,
        comm_delay_ms,
        offered_degree: dict[int, int],
        preference: PreferenceFunction = preference_p1,
        p_percent: float = 5.0,
        rng: np.random.Generator | None = None,
        node_load: dict[int, float] | None = None,
    ) -> None:
        if p_percent < 0:
            raise TreeConstructionError(f"p_percent must be >= 0, got {p_percent!r}")
        for node, load in (node_load or {}).items():
            if not np.isfinite(load) or load < 0:
                raise TreeConstructionError(
                    f"node_load[{node}] must be finite and >= 0, got {load!r}"
                )
        self.graph = DisseminationGraph(source)
        self._comm_delay_ms = comm_delay_ms
        self._offered_degree = offered_degree
        self._preference = preference
        self._p_percent = p_percent
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._node_load = dict(node_load) if node_load else {}

    # ------------------------------------------------------------------

    def _capacity_left(self, node: int) -> int:
        budget = self._offered_degree.get(node, 0)
        return budget - self.graph.nodes[node].n_dependents

    def _serveable_items(self, parent: int, needs: dict[int, float]) -> set[int]:
        """Items of ``needs`` that ``parent`` can serve without augmentation.

        A parent can serve item ``x`` at tolerance ``c`` iff it receives
        ``x`` at a coherency at least as stringent (Eq. 1).  The source
        can serve everything.
        """
        if parent == self.graph.source:
            return set(needs)
        receive = self.graph.nodes[parent].receive_c
        return {
            x for x, c in needs.items() if x in receive and receive[x] <= c
        }

    def _level_candidates(
        self, level: int, needs: dict[int, float], newcomer: int
    ) -> list[_Candidate]:
        """Rank a level's capacity-bearing nodes; apply the P% band."""
        scored: list[_Candidate] = []
        for node in self.graph.levels[level]:
            if self._capacity_left(node) < 1:
                continue
            serveable = self._serveable_items(node, needs)
            pref = self._preference(
                self._comm_delay_ms(node, newcomer),
                self.graph.nodes[node].n_dependents,
                len(serveable),
            )
            load = self._node_load.get(node)
            if load:
                # Lower preference wins: scaling by observed load demotes
                # hot nodes without ever disqualifying them outright.
                pref *= 1.0 + load
            scored.append(_Candidate(node=node, preference=pref, serveable=serveable))
        if not scored:
            return []
        scored.sort(key=lambda cand: (cand.preference, cand.node))
        cutoff = scored[0].preference * (1.0 + self._p_percent / 100.0)
        return [cand for cand in scored if cand.preference <= cutoff]

    def _augment(self, node: int, item_id: int, c: float) -> None:
        """Ensure ``node`` receives ``item_id`` at coherency <= ``c``.

        Recursively requests service from existing parents up to the
        source (the paper's cascading augmentation).  Never consumes new
        push connections: service rides existing parent-child edges.
        """
        if node == self.graph.source:
            return
        state = self.graph.nodes[node]
        current = state.receive_c.get(item_id)
        if current is not None:
            if current <= c:
                return
            # Tighten this node's subscription and cascade upward.
            provider = state.parent_for[item_id]
            self._augment(provider, item_id, c)
            self.graph.tighten(node, item_id, c)
            return
        # Node does not receive the item yet: pick a provider among its
        # existing parents -- preferring one that already carries the item,
        # else a random parent (paper's rule) -- and recurse.
        parents = sorted(set(state.parent_for.values()))
        if not parents:
            raise TreeConstructionError(
                f"node {node} has no parents to augment item {item_id} through"
            )
        carrying = [p for p in parents if self._carries(p, item_id)]
        if carrying:
            provider = min(
                carrying,
                key=lambda p: self.graph.receive_c(p, item_id),
            )
        else:
            provider = parents[int(self._rng.integers(0, len(parents)))]
        self._augment(provider, item_id, c)
        self.graph.connect(provider, node, item_id, c)

    def _carries(self, node: int, item_id: int) -> bool:
        if node == self.graph.source:
            return True
        return item_id in self.graph.nodes[node].receive_c

    # ------------------------------------------------------------------

    def insert(self, profile: InterestProfile) -> int:
        """Insert one repository; return the level it was placed at.

        Raises:
            TreeConstructionError: if the repository wants no items or no
                level has spare capacity (possible only with zero offered
                degrees).
        """
        newcomer = profile.repository
        needs = dict(profile.requirements)
        if not needs:
            raise TreeConstructionError(
                f"repository {newcomer} has no data needs; nothing to place"
            )

        level = 0
        while level < len(self.graph.levels):
            candidates = self._level_candidates(level, needs, newcomer)
            if candidates:
                self._attach(newcomer, profile, candidates, level + 1)
                return level + 1
            level += 1
        raise TreeConstructionError(
            f"no level can host repository {newcomer}: "
            "every node is out of cooperative resources"
        )

    def _attach(
        self,
        newcomer: int,
        profile: InterestProfile,
        candidates: list[_Candidate],
        level: int,
    ) -> None:
        """Wire the newcomer below the admitted candidates."""
        needs = dict(profile.requirements)
        self.graph.add_node(newcomer, level, own_c=profile.requirements)

        assignment: dict[int, list[int]] = {}
        unassigned: list[int] = []
        for item_id in sorted(needs):
            server = next(
                (cand for cand in candidates if item_id in cand.serveable), None
            )
            if server is None:
                unassigned.append(item_id)
            else:
                assignment.setdefault(server.node, []).append(item_id)

        if unassigned:
            # The most preferred candidate takes them on, augmenting its
            # own subscriptions up the graph as needed.
            best = candidates[0]
            assignment.setdefault(best.node, []).extend(unassigned)
            for item_id in unassigned:
                self._augment(best.node, item_id, needs[item_id])

        for parent, item_ids in assignment.items():
            for item_id in item_ids:
                self.graph.connect(parent, newcomer, item_id, needs[item_id])

    def insert_all(self, profiles: list[InterestProfile]) -> DisseminationGraph:
        """Insert repositories in the given order and return the graph."""
        for profile in profiles:
            self.insert(profile)
        return self.graph


def build_d3g(
    profiles: list[InterestProfile],
    source: int,
    comm_delay_ms,
    offered_degree: dict[int, int] | int,
    preference: PreferenceFunction = preference_p1,
    p_percent: float = 5.0,
    rng: np.random.Generator | None = None,
    node_load: dict[int, float] | None = None,
) -> DisseminationGraph:
    """Convenience wrapper: build the full ``d3g`` in one call.

    Args:
        profiles: Interest profiles in insertion order.
        source: Source node id.
        comm_delay_ms: ``(u, v) -> ms`` communication-delay oracle.
        offered_degree: Either a single degree applied to every node
            (source included) or an explicit per-node mapping.
        preference: Preference factor (default: paper's P1).
        p_percent: Load-controller admission band (default 5%).
        rng: Random stream for augmentation's random-parent rule.
        node_load: Observed-load weights demoting hot candidates (see
            :class:`LelaBuilder`).  ``None``/empty is plain LeLA.

    Returns:
        The constructed, validated :class:`DisseminationGraph`.
    """
    if isinstance(offered_degree, int):
        budgets = {source: offered_degree}
        budgets.update({p.repository: offered_degree for p in profiles})
    else:
        budgets = dict(offered_degree)
    builder = LelaBuilder(
        source=source,
        comm_delay_ms=comm_delay_ms,
        offered_degree=budgets,
        preference=preference,
        p_percent=p_percent,
        rng=rng,
        node_load=node_load,
    )
    graph = builder.insert_all(profiles)
    graph.validate(max_dependents=budgets)
    return graph


def reoptimize_d3g(
    profiles: list[InterestProfile],
    source: int,
    comm_delay_ms,
    offered_degree: dict[int, int] | int,
    preference: PreferenceFunction = preference_p1,
    p_percent: float = 5.0,
    rng: np.random.Generator | None = None,
    node_load: dict[int, float] | None = None,
) -> DisseminationGraph:
    """Re-run LeLA with observed load folded into the level ranking.

    The paper re-applies the algorithm whenever requirements change
    (Section 4); online adaptation re-applies it when *observed traffic*
    drifts instead.  The re-optimization is realized as a deterministic
    load-aware rebuild over the same insertion order and random stream:
    with an empty ``node_load`` it reproduces the original graph
    bit-exactly, and incrementality comes from applying only the
    edge-level :class:`~repro.core.dynamics.ReconfigurationDiff` between
    the old and new graphs to the running system.
    """
    return build_d3g(
        profiles=profiles,
        source=source,
        comm_delay_ms=comm_delay_ms,
        offered_degree=offered_degree,
        preference=preference,
        p_percent=p_percent,
        rng=rng,
        node_load=node_load,
    )

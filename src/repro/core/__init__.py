"""The paper's primary contribution: cooperative coherency maintenance.

Modules:

- :mod:`repro.core.items` -- data items and coherency-requirement mixes.
- :mod:`repro.core.interests` -- per-repository interest profiles.
- :mod:`repro.core.cooperation` -- the Eq. (2) degree-of-cooperation
  heuristic (Section 3).
- :mod:`repro.core.preference` -- LeLA preference factors (Section 4).
- :mod:`repro.core.tree` -- the dynamic-data dissemination graph
  (``d3g``) and per-item trees (``d3t``).
- :mod:`repro.core.lela` -- the Level-by-Level construction Algorithm.
- :mod:`repro.core.dissemination` -- update-dissemination policies
  (Section 5): distributed, centralised, flooding, Eq.-3-only.
- :mod:`repro.core.fidelity` -- the fidelity / loss-of-fidelity metric.
- :mod:`repro.core.metrics` -- message and check accounting.
"""

from repro.core.cooperation import coop_degree
from repro.core.interests import InterestProfile, generate_interests
from repro.core.items import CoherencyMix, DataItem
from repro.core.lela import LelaBuilder, build_d3g
from repro.core.preference import PreferenceFunction, preference_p1, preference_p2
from repro.core.tree import DisseminationGraph

__all__ = [
    "coop_degree",
    "InterestProfile",
    "generate_interests",
    "CoherencyMix",
    "DataItem",
    "LelaBuilder",
    "build_d3g",
    "PreferenceFunction",
    "preference_p1",
    "preference_p2",
    "DisseminationGraph",
]

"""The degree-of-cooperation heuristic (Section 3, Eq. 2).

The paper shows fidelity-vs-cooperation is U-shaped: too few dependents
per repository makes the dissemination tree deep (communication delays
dominate), too many overloads individual nodes (computational delays
dominate).  Eq. (2) picks the degree of cooperation from the measured
average communication and computational delays:

    the degree of cooperation should be directly proportional to the
    communication delays and inversely proportional to the computational
    delays                                                   (Section 3)

and the formula further divides the raw computational delay by ``f``, the
paper's estimate that on average only ``1/f`` of a node's dependents are
interested in (i.e. actually receive) a given update.

The OCR of the paper garbles Eq. (2)'s exact constants, so we use the
calibrated form documented in DESIGN.md §4:

    coop_degree = clamp(round((K / f) * comm_delay / comp_delay),
                        1, c_resources)        with K = 250

which matches every recoverable quantitative fact: the footnote's
f=50 => degree ~10 and f=100 => degree ~5 at the base-case delay ratio of
2, the main text's base-case optimum inside [3, 20], and the required
proportionalities.  The paper reports fidelity is insensitive to
f >= 50 (~1% variation); the Figure 7 reproduction checks this.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = ["coop_degree", "CALIBRATION_K", "DEFAULT_INTEREST_FRACTION"]

#: Calibration constant of the reconstructed Eq. (2); see module docstring.
CALIBRATION_K = 250.0

#: The paper's default ``f``: one in ``f`` dependents cares about an update.
DEFAULT_INTEREST_FRACTION = 50.0


def coop_degree(
    avg_comm_delay_ms: float,
    avg_comp_delay_ms: float,
    f: float = DEFAULT_INTEREST_FRACTION,
    c_resources: int = 100,
) -> int:
    """Compute the controlled degree of cooperation (Eq. 2).

    Args:
        avg_comm_delay_ms: Average repository-to-repository communication
            delay (ms); use
            :meth:`repro.network.model.NetworkModel.mean_repo_delay_ms`.
        avg_comp_delay_ms: Average computational delay to disseminate one
            update to one dependent (ms; paper default 12.5).
        f: Interest fraction divisor -- on average one in ``f`` dependents
            receives a given update (paper default 50; results insensitive
            for f >= 50).
        c_resources: Upper bound on cooperative resources a repository can
            offer (the paper's ``cResources``).

    Returns:
        The number of dependents each repository should serve, clamped to
        ``[1, c_resources]``.

    Raises:
        ConfigurationError: on non-positive ``f`` or ``c_resources``, or a
            negative delay.
    """
    if f <= 0:
        raise ConfigurationError(f"f must be positive, got {f!r}")
    if c_resources < 1:
        raise ConfigurationError(f"c_resources must be >= 1, got {c_resources!r}")
    if avg_comm_delay_ms < 0 or avg_comp_delay_ms < 0:
        raise ConfigurationError(
            "delays must be non-negative, got "
            f"comm={avg_comm_delay_ms!r}, comp={avg_comp_delay_ms!r}"
        )
    if avg_comp_delay_ms == 0.0:
        # Computation is free: fan out as wide as resources allow.
        return int(c_resources)
    if avg_comm_delay_ms == 0.0:
        # Communication is free: depth costs nothing, keep nodes unloaded.
        return 1
    degree = round((CALIBRATION_K / f) * (avg_comm_delay_ms / avg_comp_delay_ms))
    return int(min(max(degree, 1), c_resources))

"""Preset traces calibrated to the paper's Table 1.

Table 1 lists six representative tickers with the min/max prices observed
over 10 000 one-second polls in Jan/Feb 2002.  The real Yahoo! traces are
unavailable, so each preset calibrates the synthetic generator to the
ticker's price level and observed band (DESIGN.md §4, substitution 1).

Volatility calibration: a mean-reverting walk with per-step std ``sigma``
and reversion ``r`` has a stationary std of roughly ``sigma/sqrt(2r)``;
over 10 000 samples its range is ~6 stationary stds.  We solve for
``sigma`` from the Table 1 band.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.traces.model import Trace
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace

__all__ = [
    "TickerSpec",
    "PAPER_TICKERS",
    "draw_spec",
    "make_paper_trace",
    "make_trace_set",
]

_RANGE_IN_STATIONARY_STDS = 6.0
_DEFAULT_REVERSION = 0.05
_DEFAULT_CHANGE_PROBABILITY = 0.6


@dataclass(frozen=True)
class TickerSpec:
    """One Table 1 row: ticker symbol and its observed price band."""

    ticker: str
    min_price: float
    max_price: float

    def __post_init__(self) -> None:
        if self.min_price <= 0 or self.max_price <= self.min_price:
            raise ConfigurationError(
                f"invalid band [{self.min_price!r}, {self.max_price!r}] "
                f"for {self.ticker!r}"
            )

    @property
    def mid_price(self) -> float:
        return 0.5 * (self.min_price + self.max_price)

    @property
    def band(self) -> float:
        return self.max_price - self.min_price


#: The six tickers of the paper's Table 1, with the paper's min/max bands.
PAPER_TICKERS: tuple[TickerSpec, ...] = (
    TickerSpec("MSFT", 60.09, 60.85),
    TickerSpec("SUNW", 10.60, 10.99),
    TickerSpec("DELL", 27.16, 28.26),
    TickerSpec("QCOM", 40.38, 41.23),
    TickerSpec("INTC", 33.66, 34.239),
    TickerSpec("ORCL", 16.51, 17.10),
)


def config_for_spec(spec: TickerSpec, n_samples: int = 10_000) -> SyntheticTraceConfig:
    """Derive synthetic-generator parameters from a Table 1 band."""
    stationary_std = spec.band / _RANGE_IN_STATIONARY_STDS
    sigma = stationary_std * math.sqrt(2.0 * _DEFAULT_REVERSION)
    return SyntheticTraceConfig(
        n_samples=n_samples,
        interval_s=1.0,
        start_price=spec.mid_price,
        volatility=max(sigma, 0.005),
        reversion=_DEFAULT_REVERSION,
        tick=0.01,
        change_probability=_DEFAULT_CHANGE_PROBABILITY,
    )


def make_paper_trace(
    spec: TickerSpec,
    rng: np.random.Generator,
    n_samples: int = 10_000,
) -> Trace:
    """Generate a synthetic trace for one Table 1 ticker."""
    trace = generate_trace(spec.ticker, config_for_spec(spec, n_samples), rng)
    trace.meta["table1_min"] = spec.min_price
    trace.meta["table1_max"] = spec.max_price
    return trace


def make_trace_set(
    n_traces: int,
    rng_factory,
    n_samples: int = 10_000,
) -> list[Trace]:
    """Generate the paper's 100-trace ensemble (or any other count).

    The first ``len(PAPER_TICKERS)`` traces use the Table 1 presets; the
    remainder draw a random price level and band in the range the paper's
    traces cover (roughly $10-$65 with sub-dollar to ~1-dollar bands).

    Args:
        n_traces: Number of traces to generate.
        rng_factory: Callable ``index -> numpy Generator`` (use
            :meth:`repro.sim.rng.RandomStreams.spawn`).
        n_samples: Samples per trace.
    """
    if n_traces < 1:
        raise ConfigurationError(f"n_traces must be >= 1, got {n_traces!r}")
    traces: list[Trace] = []
    for i in range(n_traces):
        rng = rng_factory(i)
        traces.append(make_paper_trace(draw_spec(i, rng), rng, n_samples))
    return traces


def draw_spec(index: int, rng: np.random.Generator) -> TickerSpec:
    """The :class:`TickerSpec` for trace ``index`` of an ensemble.

    The first ``len(PAPER_TICKERS)`` indices return the Table 1 presets
    (consuming no randomness); later indices draw a price level and band
    from ``rng`` -- two uniform draws, in that order, so generators that
    share a per-trace stream stay bit-compatible with
    :func:`make_trace_set`.
    """
    if index < len(PAPER_TICKERS):
        return PAPER_TICKERS[index]
    level = float(rng.uniform(10.0, 65.0))
    band = float(rng.uniform(0.3, 1.2))
    return TickerSpec(f"SYN{index:03d}", level, level + band)

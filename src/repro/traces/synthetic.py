"""Synthetic stock-price traces.

The paper's traces (Table 1) have three properties that matter to the
dissemination algorithms:

1. values arrive about once per second, but the *price* changes more
   slowly -- consecutive polls frequently repeat the last value;
2. prices move in discrete ticks (cents), mostly by one or two ticks;
3. over a few hours a price wanders inside a band that is narrow relative
   to the price itself (e.g. MSFT 60.09-60.85 over three hours).

We reproduce this with a mean-reverting (discretised Ornstein-Uhlenbeck)
random walk, rounded to the tick size, with a per-step "no trade"
probability.  Mean reversion keeps the trace inside a band like the real
traces; tick rounding recreates the cent-granular jumps that interact
with the stringent ($0.01-$0.099) coherency tolerances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.traces.model import Trace

__all__ = ["SyntheticTraceConfig", "generate_trace"]


@dataclass(frozen=True)
class SyntheticTraceConfig:
    """Parameters of the synthetic price process.

    Attributes:
        n_samples: Number of polled values (paper: 10 000).
        interval_s: Poll interval in seconds (paper: ~1 s).
        start_price: Initial price, also the mean-reversion anchor.
        volatility: Per-step standard deviation of the price innovation,
            in dollars (before tick rounding).
        reversion: Mean-reversion strength in [0, 1); 0 is a pure random
            walk, larger values pull harder toward ``start_price``.
        tick: Price granularity in dollars (US equities in 2002: $0.01).
        change_probability: Probability a poll observes a fresh trade;
            otherwise the previous price repeats (the polling artefact).
    """

    n_samples: int = 10_000
    interval_s: float = 1.0
    start_price: float = 50.0
    volatility: float = 0.02
    reversion: float = 0.01
    tick: float = 0.01
    change_probability: float = 0.35

    def validate(self) -> None:
        # NaN/inf parse as floats and sail through sign checks (NaN fails
        # *every* comparison), then poison the whole generated trace --
        # reject them explicitly before any arithmetic happens.
        for field in ("interval_s", "start_price", "volatility", "reversion", "tick"):
            value = getattr(self, field)
            if not math.isfinite(value):
                raise ConfigurationError(f"{field} must be finite, got {value!r}")
        if self.n_samples < 1:
            raise ConfigurationError(f"n_samples must be >= 1, got {self.n_samples!r}")
        if self.interval_s <= 0:
            raise ConfigurationError(
                f"interval_s must be positive, got {self.interval_s!r}"
            )
        if self.start_price <= 0:
            raise ConfigurationError(
                f"start_price must be positive, got {self.start_price!r}"
            )
        if self.volatility < 0:
            raise ConfigurationError(
                f"volatility must be non-negative, got {self.volatility!r}"
            )
        if not 0.0 <= self.reversion < 1.0:
            raise ConfigurationError(
                f"reversion must be in [0, 1), got {self.reversion!r}"
            )
        if self.tick <= 0:
            raise ConfigurationError(f"tick must be positive, got {self.tick!r}")
        if not 0.0 < self.change_probability <= 1.0:
            raise ConfigurationError(
                "change_probability must be in (0, 1], "
                f"got {self.change_probability!r}"
            )


def generate_trace(
    name: str,
    config: SyntheticTraceConfig,
    rng: np.random.Generator,
    change_probability: np.ndarray | None = None,
) -> Trace:
    """Generate one synthetic price trace.

    The process is ``p_{k+1} = p_k + r*(p_0 - p_k) + sigma*z_k`` rounded to
    the tick grid, with each step applied only when a Bernoulli "trade
    happened" draw succeeds.  The price is floored at one tick so it can
    never go non-positive.

    Args:
        name: Item / ticker identifier.
        config: Process parameters.
        rng: Source of randomness (one independent stream per trace).
        change_probability: Optional per-step trade probability, length
            ``config.n_samples``, overriding the scalar
            ``config.change_probability``.  This is the hook the
            non-stationary workload generators (flash crowds, diurnal
            cycles; see :mod:`repro.workloads`) use to modulate the
            update *rate* while keeping the price *dynamics* identical.
            Exactly one uniform draw is consumed per step either way, so
            a constant profile equal to the scalar reproduces the
            default trace bit for bit.

    Returns:
        A :class:`~repro.traces.model.Trace` with strictly increasing
         1-per-``interval_s`` timestamps.
    """
    config.validate()
    n = config.n_samples
    times = np.arange(n, dtype=float) * config.interval_s

    innovations = rng.normal(0.0, config.volatility, size=n)
    if change_probability is None:
        trades = rng.random(n) < config.change_probability
    else:
        profile = np.asarray(change_probability, dtype=float)
        if profile.shape != (n,):
            raise ConfigurationError(
                f"change_probability profile must have shape ({n},), "
                f"got {profile.shape}"
            )
        if not np.isfinite(profile).all() or (profile < 0).any() or (profile > 1).any():
            raise ConfigurationError(
                "change_probability profile entries must be finite and in [0, 1]"
            )
        trades = rng.random(n) < profile
    values = np.empty(n, dtype=float)
    price = config.start_price
    anchor = config.start_price
    tick = config.tick
    for k in range(n):
        if k > 0 and trades[k]:
            drift = config.reversion * (anchor - price)
            price = price + drift + innovations[k]
            price = round(price / tick) * tick
            if price < tick:
                price = tick
        values[k] = price

    return Trace(
        name=name,
        times=times,
        values=values,
        meta={
            "synthetic": True,
            "start_price": config.start_price,
            "volatility": config.volatility,
            "reversion": config.reversion,
            "tick": config.tick,
            "change_probability": config.change_probability,
        },
    )

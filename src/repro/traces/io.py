"""CSV round-tripping for traces.

The format is deliberately trivial -- a header line, then
``time,value`` rows -- so users can feed in their own polled traces
exactly as the paper did with Yahoo! data.

Non-finite entries (``nan``/``inf`` parse as valid floats!) are rejected
row by row with the offending line number: a NaN that slipped through
here would make the dissemination policies disagree with each other
(``NaN != last`` floods every update while ``|NaN - last| > c`` never
fires), so every ingestion path fails fast instead.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path

import numpy as np

from repro.errors import TraceError
from repro.traces.model import Trace

__all__ = ["write_trace_csv", "read_trace_csv"]

_HEADER = ("time_s", "value")


def write_trace_csv(trace: Trace, path: str | Path) -> None:
    """Write a trace to ``path`` as ``time_s,value`` CSV."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for t, v in zip(trace.times, trace.values):
            writer.writerow([repr(float(t)), repr(float(v))])


def read_trace_csv(path: str | Path, name: str | None = None) -> Trace:
    """Read a trace written by :func:`write_trace_csv` (or hand-made).

    Args:
        path: CSV file with a ``time_s,value`` header.
        name: Item name; defaults to the file stem.

    Raises:
        TraceError: on a missing/invalid header, malformed rows, or
            non-finite (NaN/inf) times or values.
    """
    path = Path(path)
    times: list[float] = []
    values: list[float] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise TraceError(f"{path} is empty") from None
        if tuple(h.strip() for h in header) != _HEADER:
            raise TraceError(
                f"{path} has header {header!r}; expected {list(_HEADER)!r}"
            )
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 2:
                raise TraceError(f"{path}:{lineno}: expected 2 columns, got {len(row)}")
            try:
                time = float(row[0])
                value = float(row[1])
            except ValueError as exc:
                raise TraceError(f"{path}:{lineno}: {exc}") from None
            if not math.isfinite(time) or not math.isfinite(value):
                raise TraceError(
                    f"{path}:{lineno}: non-finite entry "
                    f"({row[0].strip()!r}, {row[1].strip()!r}); trace times and "
                    "values must be finite"
                )
            times.append(time)
            values.append(value)
    return Trace(
        name=name if name is not None else path.stem,
        times=np.asarray(times),
        values=np.asarray(values),
    )

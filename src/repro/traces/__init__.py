"""Dynamic-data trace substrate.

The paper drives its evaluation with real stock-price traces polled from
finance.yahoo.com in Jan/Feb 2002 (Table 1): roughly one value per second,
10 000 values per trace.  Those traces are not available, so this
subpackage synthesises statistically equivalent ones (see DESIGN.md §4):

- :mod:`repro.traces.model` -- the :class:`~repro.traces.model.Trace`
  container (timestamps + values).
- :mod:`repro.traces.synthetic` -- mean-reverting, tick-rounded random
  walks calibrated to a target price band.
- :mod:`repro.traces.library` -- presets named after the paper's Table 1
  tickers, with the paper's min/max bands.
- :mod:`repro.traces.io` -- CSV round-tripping.
- :mod:`repro.traces.schedule` -- the run-wide change timeline as
  time-sorted numpy arrays (what both engine kernels consume).
- :mod:`repro.traces.stats` -- Table-1-style summaries.

Which generator a simulation actually uses -- the stationary Table 1
process here, flash crowds, diurnal cycles, or replayed CSVs -- is
chosen by the config's workload; see :mod:`repro.workloads`.
"""

from repro.traces.io import read_trace_csv, write_trace_csv
from repro.traces.library import PAPER_TICKERS, TickerSpec, make_paper_trace, make_trace_set
from repro.traces.model import Trace
from repro.traces.schedule import UpdateSchedule
from repro.traces.stats import TraceStats, summarize
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace

__all__ = [
    "Trace",
    "UpdateSchedule",
    "SyntheticTraceConfig",
    "generate_trace",
    "PAPER_TICKERS",
    "TickerSpec",
    "make_paper_trace",
    "make_trace_set",
    "read_trace_csv",
    "write_trace_csv",
    "TraceStats",
    "summarize",
]

"""Trace container.

A trace is the update sequence ``x_0, x_1, ...`` a source observes for one
data item (Section 2 calls this the *data stream*).  Timestamps are
seconds, strictly increasing; values are floats (dollars, for the stock
exemplars).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TraceError

__all__ = ["Trace"]


@dataclass
class Trace:
    """An ordered stream of (timestamp, value) updates for one item.

    Attributes:
        name: Item / ticker identifier.
        times: 1-D float array of timestamps in seconds, strictly increasing.
        values: 1-D float array of item values, same length as ``times``.
    """

    name: str
    times: np.ndarray
    values: np.ndarray
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.values = np.asarray(self.values, dtype=float)
        if self.times.ndim != 1 or self.values.ndim != 1:
            raise TraceError("times and values must be one-dimensional")
        if self.times.shape[0] != self.values.shape[0]:
            raise TraceError(
                f"times ({self.times.shape[0]}) and values "
                f"({self.values.shape[0]}) must have equal length"
            )
        if self.times.shape[0] == 0:
            raise TraceError(f"trace {self.name!r} is empty")
        if self.times.shape[0] > 1 and not (np.diff(self.times) > 0).all():
            raise TraceError(f"trace {self.name!r} timestamps are not increasing")
        if not np.isfinite(self.times).all() or not np.isfinite(self.values).all():
            raise TraceError(f"trace {self.name!r} contains non-finite entries")

    def __len__(self) -> int:
        return int(self.times.shape[0])

    @property
    def initial_value(self) -> float:
        """The first value; repositories are primed with it."""
        return float(self.values[0])

    @property
    def span(self) -> float:
        """Observation window length in seconds."""
        return float(self.times[-1] - self.times[0])

    @property
    def min_value(self) -> float:
        return float(self.values.min())

    @property
    def max_value(self) -> float:
        return float(self.values.max())

    def changes(self) -> "Trace":
        """Return the sub-trace of *distinct consecutive* values.

        Polling at one value per second re-reads unchanged prices; only
        actual changes matter to dissemination.  The first sample is always
        kept as the priming value.
        """
        if len(self) == 1:
            return self
        keep = np.empty(len(self), dtype=bool)
        keep[0] = True
        keep[1:] = self.values[1:] != self.values[:-1]
        return Trace(
            name=self.name,
            times=self.times[keep],
            values=self.values[keep],
            meta=dict(self.meta),
        )

    def value_at(self, t: float) -> float:
        """Source value at time ``t`` (step function, left-continuous hold).

        Raises:
            TraceError: if ``t`` precedes the first sample.
        """
        if t < self.times[0]:
            raise TraceError(f"time {t!r} precedes trace start {self.times[0]!r}")
        idx = int(np.searchsorted(self.times, t, side="right")) - 1
        return float(self.values[idx])

    def slice(self, n: int) -> "Trace":
        """Return a prefix of at most ``n`` samples (used by scale presets)."""
        if n < 1:
            raise TraceError(f"slice length must be >= 1, got {n!r}")
        n = min(n, len(self))
        return Trace(
            name=self.name,
            times=self.times[:n].copy(),
            values=self.values[:n].copy(),
            meta=dict(self.meta),
        )

"""Table-1-style trace summaries.

The paper's Table 1 reports, per ticker, the polling interval and the
min/max price over the trace.  :func:`summarize` computes those plus the
statistics that matter to coherency maintenance: how often the price
actually changes and how large the jumps are relative to the stringent
($0.01-$0.099) tolerance band.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traces.model import Trace

__all__ = ["TraceStats", "summarize", "format_table1"]


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of one trace."""

    name: str
    n_samples: int
    span_s: float
    min_value: float
    max_value: float
    n_changes: int
    change_rate: float
    mean_abs_jump: float
    max_abs_jump: float

    @property
    def band(self) -> float:
        """Width of the observed price band."""
        return self.max_value - self.min_value


def summarize(trace: Trace) -> TraceStats:
    """Compute Table-1-style statistics for a trace."""
    diffs = np.diff(trace.values)
    jumps = diffs[diffs != 0.0]
    n_changes = int(jumps.shape[0])
    span = trace.span
    return TraceStats(
        name=trace.name,
        n_samples=len(trace),
        span_s=span,
        min_value=trace.min_value,
        max_value=trace.max_value,
        n_changes=n_changes,
        change_rate=(n_changes / span) if span > 0 else 0.0,
        mean_abs_jump=float(np.abs(jumps).mean()) if n_changes else 0.0,
        max_abs_jump=float(np.abs(jumps).max()) if n_changes else 0.0,
    )


def format_table1(stats: list[TraceStats]) -> str:
    """Render stats as an ASCII table shaped like the paper's Table 1."""
    header = (
        f"{'Ticker':<8} {'Samples':>8} {'Span(hrs)':>10} "
        f"{'Min':>9} {'Max':>9} {'Changes':>8} {'Chg/s':>7}"
    )
    lines = [header, "-" * len(header)]
    for s in stats:
        lines.append(
            f"{s.name:<8} {s.n_samples:>8d} {s.span_s / 3600.0:>10.2f} "
            f"{s.min_value:>9.3f} {s.max_value:>9.3f} "
            f"{s.n_changes:>8d} {s.change_rate:>7.3f}"
        )
    return "\n".join(lines)

"""The run-wide source-update timeline as numpy arrays.

The engines simulate *changes* (polling repeats carry no information),
and every change of every trace is known before the run starts.  An
:class:`UpdateSchedule` materialises that timeline once -- three
parallel arrays (times, item ids, values), time-sorted with a stable
sort -- so that

- the scalar engine schedules its source events from plain arrays
  instead of per-trace Python tuple iteration, and
- the vectorized engine hands the times straight to
  :class:`~repro.sim.kernel.BatchKernel` as its static schedule.

Ordering contract: within one timestamp, updates appear in the traces'
mapping order (the builder's item order), which is exactly the order the
scalar engine has always scheduled them in -- so the ``(time, seq)``
tie-breaking of both kernels is preserved bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traces.model import Trace

__all__ = ["UpdateSchedule"]


@dataclass(frozen=True)
class UpdateSchedule:
    """Time-sorted (time, item, value) arrays of every source change.

    Attributes:
        times: Non-decreasing change timestamps (seconds, float64).
        item_ids: Item id per change (int64), parallel to ``times``.
        values: Fresh value per change (float64), parallel to ``times``.
        span: The longest trace's time span -- the run's scoring horizon.
    """

    times: np.ndarray
    item_ids: np.ndarray
    values: np.ndarray
    span: float

    def __post_init__(self) -> None:
        for array in (self.times, self.item_ids, self.values):
            array.flags.writeable = False

    def __len__(self) -> int:
        return int(self.times.size)

    @classmethod
    def from_traces(cls, traces: dict[int, Trace]) -> "UpdateSchedule":
        """Merge every trace's changes into one time-sorted timeline.

        Index 0 of each trace is the priming value every node already
        holds at t=0, so only ``changes()[1:]`` become source events --
        the same slice the engines have always simulated.
        """
        times_parts: list[np.ndarray] = []
        item_parts: list[np.ndarray] = []
        value_parts: list[np.ndarray] = []
        span = 0.0
        for item_id, trace in traces.items():
            changes = trace.changes()
            span = max(span, trace.span)
            times_parts.append(np.asarray(changes.times[1:], dtype=np.float64))
            item_parts.append(
                np.full(len(changes.times) - 1, item_id, dtype=np.int64)
            )
            value_parts.append(np.asarray(changes.values[1:], dtype=np.float64))
        if not times_parts:
            empty = np.empty(0)
            return cls(
                times=empty,
                item_ids=np.empty(0, dtype=np.int64),
                values=empty.copy(),
                span=span,
            )
        times = np.concatenate(times_parts)
        item_ids = np.concatenate(item_parts)
        values = np.concatenate(value_parts)
        # Stable sort: equal timestamps keep traces-mapping order, i.e.
        # the scalar engine's historical scheduling order.
        order = np.argsort(times, kind="stable")
        return cls(
            times=np.ascontiguousarray(times[order]),
            item_ids=np.ascontiguousarray(item_ids[order]),
            values=np.ascontiguousarray(values[order]),
            span=span,
        )

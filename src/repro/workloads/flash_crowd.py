"""Flash-crowd workload: Pareto-sized bursts of update activity.

Real dynamic-data sources are not stationary: earnings releases, breaking
news and market opens produce *flash crowds* -- short windows in which an
item updates far more often than its quiet-time baseline.  This workload
keeps the Table 1-calibrated price *dynamics* (the mean-reverting tick
walk) but modulates the per-second probability that a fresh trade is
observed: each item gets a few burst episodes whose peak heights are
drawn from a Pareto distribution (heavy-tailed, like flash-crowd
literature measures) and whose influence decays exponentially after
onset.

The interesting systems question it poses: dissemination trees sized for
the average rate suddenly see their bottleneck nodes saturate (the
``comp_delay`` serialisation), so fidelity under a flash crowd separates
policies that filter aggressively from those that flood.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.errors import ConfigurationError
from repro.traces.library import config_for_spec, draw_spec
from repro.traces.model import Trace
from repro.traces.synthetic import generate_trace
from repro.workloads.base import RngFactory, Workload

__all__ = ["FlashCrowdWorkload"]

#: Bursts start inside this fraction of the window, leaving a quiet head
#: (so the priming value is representative) and tail (so post-burst
#: recovery is observable).
_BURST_WINDOW = (0.1, 0.8)


@dataclass(frozen=True)
class FlashCrowdWorkload(Workload):
    """Bursty update arrivals with Pareto-distributed burst intensity.

    Per item, ``n_bursts`` onset times are placed uniformly inside the
    observation window; burst ``j`` adds
    ``intensity * pareto_j * exp(-(t - onset_j) / decay_s)`` to the
    per-step trade probability, where ``pareto_j >= 1`` is a Pareto
    draw with shape ``alpha`` (smaller ``alpha`` -- heavier tail --
    occasional enormous crowds).  The summed profile is clipped to
    ``[0, 1]``.

    Attributes:
        n_bursts: Burst episodes per item.
        intensity: Trade-probability scale of a minimal burst; a burst's
            peak is ``intensity`` times its Pareto multiplier.
        decay_s: Exponential decay time constant of a burst, seconds.
        alpha: Pareto tail index of the burst multipliers (must be
            ``> 0``; below ~2 the multiplier variance is infinite).
        base_probability: Quiet-time per-step trade probability.
    """

    name: ClassVar[str] = "flash_crowd"

    n_bursts: int = 3
    intensity: float = 0.6
    decay_s: float = 30.0
    alpha: float = 1.5
    base_probability: float = 0.05

    def validate(self) -> None:
        if self.n_bursts < 1:
            raise ConfigurationError(
                f"n_bursts must be >= 1, got {self.n_bursts!r}"
            )
        # "not (x > 0)" rather than "x <= 0": NaN fails every comparison,
        # so the inverted form rejects it here instead of letting it leak
        # into trace generation with a misleading error.
        for name in ("intensity", "decay_s", "alpha"):
            value = getattr(self, name)
            if not (math.isfinite(value) and value > 0):
                raise ConfigurationError(
                    f"{name} must be positive and finite, got {value!r}"
                )
        if not 0.0 < self.base_probability <= 1.0:
            raise ConfigurationError(
                f"base_probability must be in (0, 1], got {self.base_probability!r}"
            )

    def profile(self, n_samples: int, rng: np.random.Generator) -> np.ndarray:
        """The per-step trade-probability profile for one item."""
        t = np.arange(n_samples, dtype=float)
        span = float(max(n_samples - 1, 1))
        lo, hi = _BURST_WINDOW
        onsets = np.sort(rng.uniform(lo * span, hi * span, size=self.n_bursts))
        multipliers = 1.0 + rng.pareto(self.alpha, size=self.n_bursts)
        profile = np.full(n_samples, self.base_probability)
        for onset, multiplier in zip(onsets, multipliers):
            after = t >= onset
            profile[after] += (
                self.intensity
                * multiplier
                * np.exp(-(t[after] - onset) / self.decay_s)
            )
        return np.clip(profile, 0.0, 1.0)

    def make_traces(
        self, n_items: int, rng_factory: RngFactory, n_samples: int
    ) -> list[Trace]:
        traces: list[Trace] = []
        for i in range(n_items):
            rng = rng_factory(i)
            spec = draw_spec(i, rng)
            profile = self.profile(n_samples, rng)
            trace = generate_trace(
                spec.ticker,
                config_for_spec(spec, n_samples),
                rng,
                change_probability=profile,
            )
            trace.meta["workload"] = self.name
            trace.meta["burst_peak_probability"] = float(profile.max())
            traces.append(trace)
        return traces

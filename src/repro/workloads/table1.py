"""The paper's workload: stationary Table 1-calibrated stock traces."""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.traces.library import make_trace_set
from repro.traces.model import Trace
from repro.workloads.base import RngFactory, Workload

__all__ = ["Table1Workload"]


@dataclass(frozen=True)
class Table1Workload(Workload):
    """The default workload: the evaluation setup of the paper.

    Delegates to :func:`repro.traces.library.make_trace_set` unchanged
    -- the first six items are the Table 1 tickers, the rest draw a
    price level and band in the range the paper's traces cover.  Because
    the delegation passes the same per-item streams through the same
    code path, a config that does not name a workload produces traces
    bit-identical to every pre-workload-subsystem release (pinned by
    ``tests/workloads/test_engine_integration.py``).
    """

    name: ClassVar[str] = "table1"

    def make_traces(
        self, n_items: int, rng_factory: RngFactory, n_samples: int
    ) -> list[Trace]:
        return make_trace_set(n_items, rng_factory=rng_factory, n_samples=n_samples)

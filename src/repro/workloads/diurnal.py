"""Diurnal workload: sinusoidally modulated update rate.

Trading (and most human-driven update sources) follows a daily rhythm:
busy opens, quiet middays, busy closes.  This workload modulates the
per-step trade probability of the Table 1-calibrated price process with
a sinusoid -- ``cycles`` full periods across the observation window --
so a run alternates between high-rate and low-rate regimes.  Policies
tuned on the stationary average see both halves of their error: wasted
checks in the trough, queueing-induced staleness at the crest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.errors import ConfigurationError
from repro.traces.library import config_for_spec, draw_spec
from repro.traces.model import Trace
from repro.traces.synthetic import generate_trace
from repro.workloads.base import RngFactory, Workload

__all__ = ["DiurnalWorkload"]


@dataclass(frozen=True)
class DiurnalWorkload(Workload):
    """Sinusoidal update-rate modulation over the observation window.

    The per-step trade probability is
    ``base_probability * (1 + amplitude * sin(2*pi*cycles*t/span + phase))``,
    clipped to ``[0, 1]``.  Expressing the period as ``cycles`` per
    window (rather than absolute seconds) keeps the workload meaningful
    across scale presets: ``tiny`` (600 s) and ``paper`` (10 000 s) runs
    both see the same number of busy/quiet phases.

    Attributes:
        cycles: Full sinusoid periods across the observation window.
        amplitude: Relative modulation depth in ``[0, 1]``; ``1`` swings
            between zero and double the base rate.
        base_probability: Mean per-step trade probability.
        phase: Phase offset in radians (``0`` starts mid-ramp, rising).
    """

    name: ClassVar[str] = "diurnal"

    cycles: float = 2.0
    amplitude: float = 0.8
    base_probability: float = 0.35
    phase: float = 0.0

    def validate(self) -> None:
        if not (math.isfinite(self.cycles) and self.cycles > 0):
            raise ConfigurationError(
                f"cycles must be positive and finite, got {self.cycles!r}"
            )
        if not 0.0 <= self.amplitude <= 1.0:
            raise ConfigurationError(
                f"amplitude must be in [0, 1], got {self.amplitude!r}"
            )
        if not 0.0 < self.base_probability <= 1.0:
            raise ConfigurationError(
                f"base_probability must be in (0, 1], got {self.base_probability!r}"
            )
        if not math.isfinite(self.phase):
            raise ConfigurationError(f"phase must be finite, got {self.phase!r}")

    def profile(self, n_samples: int) -> np.ndarray:
        """The per-step trade-probability profile (same for every item)."""
        t = np.arange(n_samples, dtype=float)
        span = float(max(n_samples - 1, 1))
        wave = np.sin(2.0 * np.pi * self.cycles * t / span + self.phase)
        return np.clip(self.base_probability * (1.0 + self.amplitude * wave), 0.0, 1.0)

    def make_traces(
        self, n_items: int, rng_factory: RngFactory, n_samples: int
    ) -> list[Trace]:
        profile = self.profile(n_samples)
        traces: list[Trace] = []
        for i in range(n_items):
            rng = rng_factory(i)
            spec = draw_spec(i, rng)
            trace = generate_trace(
                spec.ticker,
                config_for_spec(spec, n_samples),
                rng,
                change_probability=profile,
            )
            trace.meta["workload"] = self.name
            trace.meta["cycles"] = self.cycles
            traces.append(trace)
        return traces

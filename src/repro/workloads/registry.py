"""Workload registry: build and parse workload specs by name.

Mirrors the dissemination-policy registry: one flat name -> class map,
plus the CLI's spec mini-language --

    table1
    flash_crowd:intensity=1.2,decay_s=20
    diurnal:cycles=4,amplitude=0.5
    replay:path=traces/,cycle=false

``name[:key=value,...]`` where each key is a dataclass field of the
named workload and each value is coerced to the field's declared type.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import ConfigurationError
from repro.workloads.base import Workload
from repro.workloads.diurnal import DiurnalWorkload
from repro.workloads.flash_crowd import FlashCrowdWorkload
from repro.workloads.replay import ReplayWorkload
from repro.workloads.table1 import Table1Workload

__all__ = ["available_workloads", "make_workload", "parse_workload_spec"]

_REGISTRY: dict[str, type[Workload]] = {
    cls.name: cls
    for cls in (Table1Workload, FlashCrowdWorkload, DiurnalWorkload, ReplayWorkload)
}


def available_workloads() -> list[str]:
    """Names accepted by :func:`make_workload`, sorted."""
    return sorted(_REGISTRY)


def make_workload(name: str, **params) -> Workload:
    """Instantiate (and validate) a workload by registry name.

    Raises:
        ConfigurationError: on an unknown name, an unknown parameter, or
            parameter values the workload's ``validate`` rejects.
    """
    try:
        cls = _REGISTRY[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {name!r}; choose from {available_workloads()}"
        ) from None
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(params) - known)
    if unknown:
        raise ConfigurationError(
            f"workload {name!r} has no parameter(s) {unknown}; "
            f"it accepts {sorted(known) or 'none'}"
        )
    workload = cls(**params)
    workload.validate()
    return workload


def _coerce(text: str, annotation: type):
    """Coerce one ``key=value`` string to a field's declared type."""
    if annotation is bool:
        lowered = text.strip().lower()
        if lowered in ("true", "1", "yes", "on"):
            return True
        if lowered in ("false", "0", "no", "off"):
            return False
        raise ConfigurationError(f"expected a boolean, got {text!r}")
    if annotation in (int, float):
        try:
            return annotation(text)
        except ValueError:
            raise ConfigurationError(
                f"expected {annotation.__name__}, got {text!r}"
            ) from None
    return text


def parse_workload_spec(spec: str) -> Workload:
    """Parse the CLI's ``name[:key=value,...]`` workload mini-language.

    Raises:
        ConfigurationError: on malformed specs, unknown names or
            parameters, or invalid parameter values.
    """
    spec = spec.strip()
    if not spec:
        raise ConfigurationError("workload spec is empty")
    name, _, params_text = spec.partition(":")
    name = name.strip().lower()
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {name!r}; choose from {available_workloads()}"
        ) from None
    hints = typing.get_type_hints(cls)
    field_types = {f.name: hints[f.name] for f in dataclasses.fields(cls)}
    params: dict = {}
    if params_text:
        for part in params_text.split(","):
            key, eq, value = part.partition("=")
            key = key.strip()
            if not eq or not key:
                raise ConfigurationError(
                    f"workload parameter {part!r} is not of the form key=value"
                )
            if key not in field_types:
                raise ConfigurationError(
                    f"workload {name!r} has no parameter {key!r}; "
                    f"it accepts {sorted(field_types) or 'none'}"
                )
            params[key] = _coerce(value.strip(), field_types[key])
    return make_workload(name, **params)

"""The workload protocol: what every update-stream generator must be.

The paper's evaluation (Section 5) drives every experiment with one
stationary synthetic process calibrated to Table 1.  A *workload* makes
that choice a first-class, swappable simulation input: it is the single
object that decides what per-(source, item) update streams a run sees.
The builder calls :meth:`Workload.make_traces` wherever it used to call
:func:`repro.traces.library.make_trace_set` directly, so everything
downstream -- policies, churn, sweeps, figures -- is workload-agnostic.

Contract:

- A workload is a **frozen dataclass**: immutable and hashable, because
  it is carried inside the frozen
  :class:`~repro.engine.config.SimulationConfig` and the parallel sweep
  subsystem keys its deterministic merge on config hashability.
- A workload is **seed-deterministic**: given the same ``rng_factory``
  (derived from ``config.seed``) and the same parameters it must return
  bit-identical traces, in every process -- the property that keeps
  sweeps bit-identical serial vs ``--jobs N``.
- ``validate()`` raises :class:`~repro.errors.ConfigurationError` on
  bad parameters; the config calls it at construction time so invalid
  workloads fail before any simulation work happens.

To add a generator, subclass :class:`Workload` and register it -- see
:mod:`repro.workloads.registry` and the how-to in ``docs/workloads.md``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, ClassVar

import numpy as np

from repro.traces.model import Trace

__all__ = ["Workload", "RngFactory"]

#: ``index -> numpy Generator``: one independent stream per trace (use
#: :meth:`repro.sim.rng.RandomStreams.spawn`).
RngFactory = Callable[[int], np.random.Generator]


class Workload(ABC):
    """Generates the per-item update streams one simulation will see.

    Subclasses are frozen dataclasses holding only hashable parameter
    fields (floats, ints, strings, tuples); the class itself carries the
    registry ``name``.
    """

    #: Registry name; subclasses override (see
    #: :func:`repro.workloads.registry.make_workload`).
    name: ClassVar[str] = "abstract"

    def validate(self) -> None:
        """Check parameter sanity.

        Raises:
            ConfigurationError: on out-of-range parameters.  The default
                accepts everything; subclasses override.
        """

    @abstractmethod
    def make_traces(
        self, n_items: int, rng_factory: RngFactory, n_samples: int
    ) -> list[Trace]:
        """Generate one :class:`~repro.traces.model.Trace` per item.

        Args:
            n_items: Number of dynamic data items in the run.
            rng_factory: Callable ``index -> numpy Generator`` yielding
                one independent, deterministic stream per item.
            n_samples: Polled samples per trace (the config's
                ``trace_samples``); generated traces must not outlive
                this observation window, and their first sample is the
                priming value every repository starts with.

        Returns:
            ``n_items`` traces, index-aligned to the item ids.
        """

    def describe(self) -> str:
        """One-line human-readable digest (used by the CLI banner)."""
        return self.name

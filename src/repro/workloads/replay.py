"""Trace-replay workload: drive a run from recorded CSV traces.

The paper drove its evaluation from real Yahoo! stock polls; this
workload restores that ability.  Point it at a ``time_s,value`` CSV (the
:mod:`repro.traces.io` format) or at a directory of them, and each item
replays one recorded trace -- deterministically, consuming no
randomness, so replayed runs remain bit-identical serial vs ``--jobs N``
and across processes.

Traces longer than the config's observation window are truncated to
``trace_samples`` samples; when the directory holds fewer traces than
the run has items, files are assigned round-robin (disable with
``cycle=false`` to make that a hard error instead).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import ClassVar

from repro.errors import ConfigurationError, TraceError
from repro.traces.io import read_trace_csv
from repro.traces.model import Trace
from repro.workloads.base import RngFactory, Workload

__all__ = ["ReplayWorkload"]


@dataclass(frozen=True)
class ReplayWorkload(Workload):
    """Replay recorded traces from a CSV file or directory.

    Attributes:
        path: A ``time_s,value`` CSV file, or a directory scanned for
            ``*.csv`` (sorted by filename for a stable item order).
        cycle: Assign files to items round-robin when there are fewer
            files than items; when false, a shortfall raises instead.
    """

    name: ClassVar[str] = "replay"

    path: str = ""
    cycle: bool = True

    def validate(self) -> None:
        if not self.path:
            raise ConfigurationError(
                "replay workload needs a path (e.g. --workload replay:path=traces/)"
            )

    def trace_files(self) -> list[Path]:
        """The CSV files backing the replay, in item-assignment order.

        Raises:
            TraceError: when the path does not exist or a directory
                holds no ``*.csv`` files.
        """
        self.validate()
        root = Path(self.path)
        if root.is_dir():
            files = sorted(root.glob("*.csv"))
            if not files:
                raise TraceError(f"replay directory {root} holds no *.csv files")
            return files
        if root.is_file():
            return [root]
        raise TraceError(f"replay path {root} does not exist")

    def make_traces(
        self, n_items: int, rng_factory: RngFactory, n_samples: int
    ) -> list[Trace]:
        files = self.trace_files()
        if len(files) < n_items and not self.cycle:
            raise TraceError(
                f"replay path {self.path} holds {len(files)} traces but the "
                f"run has {n_items} items (set cycle=true to round-robin)"
            )
        # Parse each unique file once; cycling then hands out sliced
        # copies (Trace.slice always copies), never aliased arrays.
        parsed = {path: read_trace_csv(path) for path in files[:n_items]}
        traces: list[Trace] = []
        for i in range(n_items):
            path = files[i % len(files)]
            trace = parsed[path].slice(n_samples)
            trace.meta["workload"] = self.name
            trace.meta["replayed_from"] = str(path)
            traces.append(trace)
        return traces

"""Pluggable workload generators: what update streams a run sees.

The paper's evaluation is driven by one stationary synthetic process
(Table 1); this package makes the update dynamics a swappable,
seed-deterministic simulation input carried inside the frozen
:class:`~repro.engine.config.SimulationConfig`:

- :class:`~repro.workloads.table1.Table1Workload` -- the paper's setup,
  and the default (bit-identical to the pre-workload engine);
- :class:`~repro.workloads.flash_crowd.FlashCrowdWorkload` -- Pareto
  bursts of update activity with exponential decay;
- :class:`~repro.workloads.diurnal.DiurnalWorkload` -- sinusoidally
  modulated update rate (busy opens, quiet middays);
- :class:`~repro.workloads.replay.ReplayWorkload` -- deterministic
  replay of recorded ``time_s,value`` CSV traces.

Select one per run with ``--workload name:key=value,...`` on the CLI or
``config.with_(workload=make_workload(...))`` in code; compare them with
the ``workload_sensitivity`` experiment.  ``docs/workloads.md`` shows
how to author and register a new generator.
"""

from repro.workloads.base import RngFactory, Workload
from repro.workloads.diurnal import DiurnalWorkload
from repro.workloads.flash_crowd import FlashCrowdWorkload
from repro.workloads.registry import (
    available_workloads,
    make_workload,
    parse_workload_spec,
)
from repro.workloads.replay import ReplayWorkload
from repro.workloads.table1 import Table1Workload

__all__ = [
    "Workload",
    "RngFactory",
    "Table1Workload",
    "FlashCrowdWorkload",
    "DiurnalWorkload",
    "ReplayWorkload",
    "available_workloads",
    "make_workload",
    "parse_workload_spec",
]

"""Multiple sources: two exchanges feeding one repository network.

Section 4 of the paper assumes a single source for exposition and notes
the multi-source extension is straightforward.  Here two "exchanges"
each own half the tickers; repositories subscribe across both, LeLA
builds one dissemination tree per exchange under *shared* cooperation
budgets, and a single event-driven simulation runs both trees through
the same per-node queues.

Run:
    python examples/multi_source_feeds.py
"""

from repro.engine import SCALE_PRESETS
from repro.engine.multisource import build_multisource_setup, MultiSourceSimulation


def main() -> None:
    config = SCALE_PRESETS["tiny"].with_(
        n_items=8,
        trace_samples=1_000,
        t_percent=80.0,
        offered_degree=6,
    )

    print(f"{'sources':>8} {'loss %':>8} {'messages':>10} {'busiest sender':>16}")
    print("-" * 46)
    for n_sources in (1, 2, 4):
        setup = build_multisource_setup(config, n_sources)
        result = MultiSourceSimulation(setup).run()
        node, sent = result.counters.busiest_sender()
        print(
            f"{n_sources:>8} {result.loss_of_fidelity:>8.2f} "
            f"{result.messages:>10} {f'node {node}: {sent}':>16}"
        )

    print()
    print("Splitting items across sources spreads the dissemination load:")
    print("the busiest node sends fewer messages and fidelity improves,")
    print("while shared cooperation budgets keep every repository within")
    print("its offered degree across all trees.")


if __name__ == "__main__":
    main()

"""Real-time sensor dissemination with the low-level API.

The paper's introduction also motivates real-time weather/sensor data.
This example skips the config-driven builder and composes the library's
pieces directly: a custom physical network, hand-rolled temperature
traces (slow drift, occasional fronts), explicit per-station coherency
requirements (forecasting centres need 0.1 degC, dashboards 1.0 degC),
a LeLA-constructed dissemination graph, and the event-driven engine.

Run:
    python examples/sensor_network.py
"""

import numpy as np

from repro.core.interests import InterestProfile
from repro.core.items import DataItem
from repro.core.lela import build_d3g
from repro.engine import SCALE_PRESETS
from repro.engine.builder import SimulationSetup
from repro.engine.simulation import DisseminationSimulation
from repro.network.model import build_network
from repro.traces.model import Trace
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace

N_SENSORS = 4
N_STATIONS = 12


def make_temperature_trace(name: str, rng: np.random.Generator) -> Trace:
    """A temperature-like series: tenth-degree ticks, slow mean drift."""
    config = SyntheticTraceConfig(
        n_samples=1_500,
        interval_s=2.0,          # sensors report every two seconds
        start_price=18.0,        # degrees Celsius (any positive level works)
        volatility=0.08,
        reversion=0.02,
        tick=0.1,
        change_probability=0.5,
    )
    return generate_trace(name, config, rng)


def main() -> None:
    rng = np.random.default_rng(42)
    network = build_network(
        n_repositories=N_STATIONS, n_routers=30, rng=np.random.default_rng(7)
    )

    items = [DataItem(item_id=i, name=f"SENSOR{i}") for i in range(N_SENSORS)]
    traces = {
        item.item_id: make_temperature_trace(item.name, rng) for item in items
    }

    # Stations 1-4 are forecasting centres (tight tolerances, all sensors);
    # the rest are public dashboards (loose tolerances, a sensor subset).
    profiles = []
    for station in network.repository_ids:
        station = int(station)
        if station <= 4:
            reqs = {item.item_id: 0.1 for item in items}
        else:
            wanted = rng.choice(N_SENSORS, size=2, replace=False)
            reqs = {int(i): 1.0 for i in wanted}
        profiles.append(InterestProfile(repository=station, requirements=reqs))

    graph = build_d3g(
        profiles,
        source=network.source,
        comm_delay_ms=network.delay_ms,
        offered_degree=3,
        rng=np.random.default_rng(0),
    )

    config = SCALE_PRESETS["tiny"].with_(
        n_repositories=N_STATIONS,
        n_items=N_SENSORS,
        policy="distributed",
        offered_degree=3,
    )
    setup = SimulationSetup(
        config=config,
        network=network,
        items=items,
        traces=traces,
        profiles={p.repository: p for p in profiles},
        graph=graph,
        effective_degree=3,
        avg_comm_delay_ms=network.mean_repo_delay_ms(),
    )
    result = DisseminationSimulation(setup).run()

    print("Sensor dissemination network")
    print("-" * 52)
    stats = graph.stats()
    print(f"stations={N_STATIONS}  sensors={N_SENSORS}  "
          f"d3g levels={stats.n_levels}  max depth={stats.max_depth}")
    print(f"system loss of fidelity: {result.loss_of_fidelity:.3f} %")
    print()
    print(f"{'station':>8} {'kind':<12} {'level':>6} {'loss %':>8}")
    for p in profiles:
        kind = "forecast" if p.repository <= 4 else "dashboard"
        level = graph.nodes[p.repository].level
        loss = result.per_repository_loss[p.repository]
        print(f"{p.repository:>8} {kind:<12} {level:>6} {loss:>8.3f}")
    print()
    print("Forecast centres sit closer to the source (their tolerances are")
    print("more stringent -- Eq. (1) forces stringent consumers upstream).")


if __name__ == "__main__":
    main()

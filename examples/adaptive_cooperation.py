"""Adaptive cooperation: Eq. (2) in action.

Sweeps the environment -- first the network's mean delay, then the
per-dependent computational cost -- and shows how the controlled degree
of cooperation adapts (more fan-out when the network is slow, less when
computation is expensive), keeping the loss of fidelity low where a
fixed degree degrades.

Run:
    python examples/adaptive_cooperation.py
"""

from repro.engine import SCALE_PRESETS, run_simulation


def sweep(label, configs):
    print(label)
    print(f"  {'x':>8} {'Eq.2 degree':>12} {'loss %':>8}")
    base = None
    for x, config in configs:
        result = run_simulation(config)
        print(f"  {x:>8.1f} {result.effective_degree:>12} {result.loss_of_fidelity:>8.2f}")
    print()


def main() -> None:
    base = SCALE_PRESETS["tiny"].with_(
        n_items=12,
        trace_samples=800,
        t_percent=100.0,
        offered_degree=20,            # offer everything; Eq. (2) decides
        controlled_cooperation=True,
    )

    sweep(
        "Varying communication delay (computation fixed at 12.5 ms):",
        [
            (delay, base.with_(comm_target_ms=delay))
            for delay in (10.0, 25.0, 60.0, 125.0)
        ],
    )
    sweep(
        "Varying computational delay (network fixed):",
        [
            (comp, base.with_(comp_delay_ms=comp))
            for comp in (2.0, 12.5, 25.0)
        ],
    )
    print("The degree of cooperation rises with communication delays and")
    print("falls with computational delays -- Section 3's Eq. (2).")


if __name__ == "__main__":
    main()

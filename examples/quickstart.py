"""Quickstart: cooperative coherency maintenance in ~40 lines.

Builds the paper's architecture at a small scale -- one source, twenty
repositories over a 80-node physical network -- runs the distributed
(Eq. 3 + Eq. 7) dissemination over synthetic stock traces and prints the
fidelity and cost numbers the paper reports.

Run:
    python examples/quickstart.py
"""

from repro.engine import SCALE_PRESETS, run_simulation


def main() -> None:
    # A scale preset is a complete, reproducible experiment description.
    config = SCALE_PRESETS["tiny"].with_(
        n_items=12,              # a dozen live tickers
        t_percent=100.0,         # all tolerances stringent ($0.01-$0.099)
        offered_degree=4,        # each node serves at most 4 dependents
        policy="distributed",    # repository-based dissemination (Section 5.1)
    )

    result = run_simulation(config)

    print("Cooperative dissemination of dynamic data")
    print("-" * 48)
    print(f"repositories          {config.n_repositories}")
    print(f"data items            {config.n_items}")
    print(f"degree of cooperation {result.effective_degree}")
    print(f"d3t max depth         {result.tree_stats.max_depth}")
    print(f"mean comm delay       {result.avg_comm_delay_ms:.1f} ms")
    print("-" * 48)
    print(f"loss of fidelity      {result.loss_of_fidelity:.2f} %")
    print(f"messages sent         {result.messages}")
    print(f"source checks         {result.source_checks}")

    # The same workload at the two extremes the paper warns about:
    # a chain of repositories, and the source serving everyone directly.
    chain = run_simulation(config.with_(offered_degree=1))
    no_coop = run_simulation(config.with_(offered_degree=config.n_repositories))
    print("-" * 48)
    print(f"loss as a chain (degree 1)      {chain.loss_of_fidelity:.2f} %")
    print(f"loss without cooperation        {no_coop.loss_of_fidelity:.2f} %")
    print("Moderate cooperation beats both extremes -- Figure 3's U-curve.")


if __name__ == "__main__":
    main()

"""Stock-ticker dissemination: the paper's motivating workload.

An online brokerage replicates six tickers (the paper's Table 1 symbols)
across repositories so that traders with $0.01-tolerance requirements
and casual observers with $0.50 tolerances are all served without
hammering the source.  Compares the three dissemination policies on the
identical workload and prints a Table-1-style trace summary.

Run:
    python examples/stock_ticker_dissemination.py
"""

from repro.engine import SCALE_PRESETS
from repro.engine.builder import build_setup
from repro.engine.simulation import run_simulation
from repro.traces.stats import format_table1, summarize


def main() -> None:
    config = SCALE_PRESETS["tiny"].with_(
        n_items=6,               # exactly the six Table 1 tickers
        trace_samples=2_000,
        t_percent=50.0,          # half the subscriptions are trader-grade
        offered_degree=4,
        controlled_cooperation=True,
    )
    setup = build_setup(config)

    print("Trace characteristics (compare the paper's Table 1):")
    print(format_table1([summarize(t) for t in setup.traces.values()]))
    print()

    print(f"{'policy':<14} {'loss %':>8} {'messages':>10} {'source checks':>14}")
    print("-" * 50)
    for policy in ("distributed", "centralized", "flooding"):
        result = run_simulation(config.with_(policy=policy), base=setup)
        print(
            f"{policy:<14} {result.loss_of_fidelity:>8.2f} "
            f"{result.messages:>10} {result.source_checks:>14}"
        )
    print()
    print("distributed and centralized send similar message counts and")
    print("achieve similar fidelity; flooding pays for its extra traffic.")


if __name__ == "__main__":
    main()
